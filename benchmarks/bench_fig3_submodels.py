"""Figure 3 — per-level submodel accuracy (0.25x / 0.5x / 1.0x).

The paper slices the final global model of HeteroFL, ScaleFL and
AdaptiveFL at the three size levels and compares their test accuracy; the
qualitative claim is that AdaptiveFL's accuracy *increases* with model
size while the baselines' large models can fall below their small ones.
"""

from repro.experiments import format_table

from common import bench_setting, once, run_algorithms

ALGORITHMS = ("heterofl", "scalefl", "adaptivefl")


def test_fig3_submodel_levels(benchmark):
    setting = bench_setting(distribution="iid", overrides={"num_rounds": 8, "eval_every": 8})
    results = once(benchmark, lambda: run_algorithms(setting, ALGORITHMS))
    rows = []
    for name, result in results.items():
        final = result.history.evaluated_records()[-1]
        rows.append(
            [
                name,
                f"{final.level_accuracies.get('S', float('nan')) * 100:.2f}",
                f"{final.level_accuracies.get('M', float('nan')) * 100:.2f}",
                f"{final.level_accuracies.get('L', float('nan')) * 100:.2f}",
            ]
        )
    print("\nFigure 3 — submodel accuracy per level (CI scale)")
    print(format_table(["algorithm", "small (%)", "medium (%)", "large (%)"], rows))
    benchmark.extra_info["rows"] = rows
    for name, result in results.items():
        final = result.history.evaluated_records()[-1]
        assert set(final.level_accuracies) == {"S", "M", "L"}
