"""Figure 4 — scalability over the number of participating clients.

The paper sweeps K = 50/100/200/500 clients (CIFAR-10, ResNet18, a=0.6);
the CI-scale sweep uses 8/16/32 clients with proportional participation
and compares AdaptiveFL with HeteroFL and ScaleFL at each population size.
"""

import pytest

from repro.experiments import format_table

from common import bench_setting, once, run_algorithms

ALGORITHMS = ("heterofl", "scalefl", "adaptivefl")
CLIENT_COUNTS = (8, 16, 32)


@pytest.mark.parametrize("num_clients", CLIENT_COUNTS)
def test_fig4_client_scaling(benchmark, num_clients):
    setting = bench_setting(
        distribution="dirichlet",
        alpha=0.6,
        overrides={
            "num_clients": num_clients,
            "clients_per_round": max(2, num_clients // 4),
            "train_samples": 80 * num_clients,
            "num_rounds": 6,
            "eval_every": 3,
        },
    )
    results = once(benchmark, lambda: run_algorithms(setting, ALGORITHMS))
    rows = [
        [name, f"{result.full_accuracy * 100:.2f}", f"{result.avg_accuracy * 100:.2f}"]
        for name, result in results.items()
    ]
    print(f"\nFigure 4 — K={num_clients} clients (CI scale)")
    print(format_table(["algorithm", "full (%)", "avg (%)"], rows))
    benchmark.extra_info["rows"] = rows
    for result in results.values():
        assert 0.0 <= result.full_accuracy <= 1.0
