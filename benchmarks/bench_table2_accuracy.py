"""Table 2 — accuracy (avg / full) of all five algorithms.

The paper's grid covers {CIFAR-10, CIFAR-100, FEMNIST} x {IID, a=0.6,
a=0.3} x {VGG16, ResNet18}.  At CI scale this bench reproduces two
representative cells (CIFAR-10-like IID and a=0.3) with all five
algorithms and prints measured next to published numbers.
"""

import pytest

from repro.experiments import PAPER_TABLE2, format_table

from common import bench_setting, once, run_algorithms

ALGORITHMS = ("all_large", "decoupled", "heterofl", "scalefl", "adaptivefl")


def _render(results, paper_cell, title):
    rows = []
    for name in ALGORITHMS:
        result = results[name]
        paper_avg, paper_full = paper_cell[name]
        rows.append(
            [
                name,
                f"{result.avg_accuracy * 100:.2f}",
                f"{paper_avg:.2f}" if paper_avg is not None else "-",
                f"{result.full_accuracy * 100:.2f}",
                f"{paper_full:.2f}",
            ]
        )
    print(f"\n{title}")
    print(format_table(["algorithm", "avg (%)", "paper avg", "full (%)", "paper full"], rows))
    return rows


@pytest.mark.parametrize(
    "distribution, alpha, paper_key",
    [("iid", None, "cifar10-iid"), ("dirichlet", 0.3, "cifar10-a0.3")],
    ids=["iid", "alpha0.3"],
)
def test_table2_cifar10_accuracy(benchmark, distribution, alpha, paper_key):
    setting = bench_setting(distribution=distribution, alpha=alpha)
    results = once(benchmark, lambda: run_algorithms(setting, ALGORITHMS))
    rows = _render(results, PAPER_TABLE2["vgg16"][paper_key], f"Table 2 — CIFAR-10-like, {paper_key} (CI scale)")
    benchmark.extra_info["rows"] = rows
    for result in results.values():
        assert 0.0 <= result.full_accuracy <= 1.0
