"""Hot-path benchmark: op-level microbenchmarks + end-to-end rounds/sec.

This is the measurement harness behind the ``repro.perf`` optimisation
layer.  It writes ``BENCH_hotpaths.json`` with three sections:

* ``calibration`` — single-thread float32 GEMM throughput of the host.
  The regression gate compares *normalised* rounds/sec (rounds/sec per
  GEMM GFLOP/s), which damps machine-to-machine variance on CI runners.
* ``micro`` — per-op timings of the reworked kernels against their
  historical reference implementations (im2col gather, col2im scatter
  vs. the Python ``kh×kw`` loop, flat-``bincount`` maxpool backward vs.
  4-axis ``np.add.at``), at training- and evaluation-scale geometries.
* ``end_to_end`` — rounds/sec of **all five algorithms** on the CI
  setting, serial and process executors, raw mode (no emulated device
  latency), plus the per-round pickled transport payload of the
  slice/delta transport against legacy full-state shipping.

``pre_pr_reference`` embeds the seed-commit throughput measured with
this exact loop (best-of-3, same container class) so the JSON carries
the speedup claim next to its baseline.

Run::

    python benchmarks/bench_hotpaths.py                 # full sweep
    python benchmarks/bench_hotpaths.py --quick         # CI-sized sweep
    python benchmarks/bench_hotpaths.py --quick \
        --baseline benchmarks/hotpaths_baseline.json    # + regression gate

The regression gate exits non-zero when any algorithm's *normalised*
serial rounds/sec drops more than ``--tolerance`` (default 30%) below
the committed baseline.
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import time
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.api.registry import available_algorithms, get_algorithm
from repro.engine.base import Executor
from repro.engine.factory import create_executor
from repro.experiments import ExperimentSetting, prepare_experiment
from repro.nn import functional as F
from repro.perf.workspace import Workspace

#: seed-commit (e57b009) serial rounds/sec on the identical harness
#: (CI setting, 4 rounds, eval_every=2, one untimed warm-up run then
#: best-of-5, same 1-CPU container class)
PRE_PR_REFERENCE = {
    "commit": "e57b009",
    "rounds": 4,
    "serial_rounds_per_second": {
        "all_large": 6.019,
        "decoupled": 5.844,
        "heterofl": 6.464,
        "scalefl": 6.474,
        "adaptivefl": 6.074,
    },
}

BENCH_SETTING_KWARGS = dict(
    dataset="cifar10",
    model="simple_cnn",
    scale="ci",
    overrides={"num_rounds": 4, "eval_every": 2},
)

#: (label, batch, channels, size, kernel, stride, padding) — training- and
#: eval-batch geometries of the CI setting's SimpleCNN
MICRO_GEOMETRIES = [
    ("train_conv1", 20, 3, 16, 5, 1, 2),
    ("train_conv2", 20, 8, 8, 5, 1, 2),
    ("eval_conv1", 200, 3, 16, 5, 1, 2),
]


def _best_of(func, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        func()
        best = min(best, time.perf_counter() - start)
    return best


def _time_op(func, min_seconds: float = 0.05) -> float:
    """Seconds per call, measured over enough iterations to be stable."""
    func()  # warm up (allocates workspaces, builds index caches)
    iterations = 1
    while True:
        start = time.perf_counter()
        for _ in range(iterations):
            func()
        elapsed = time.perf_counter() - start
        if elapsed >= min_seconds:
            return elapsed / iterations
        iterations *= 4


def measure_calibration() -> dict:
    """Single-thread float32 GEMM throughput (the normalisation anchor)."""
    size = 384
    rng = np.random.default_rng(0)
    a = rng.random((size, size), dtype=np.float32)
    b = rng.random((size, size), dtype=np.float32)
    seconds = _time_op(lambda: a @ b)
    gflops = 2 * size**3 / seconds / 1e9
    return {"gemm_size": size, "gemm_gflops": round(gflops, 3)}


def measure_micro() -> list[dict]:
    rows = []
    rng = np.random.default_rng(0)
    for label, n, c, size, k, stride, pad in MICRO_GEOMETRIES:
        x = rng.random((n, c, size, size), dtype=np.float32)
        ws = Workspace()
        cols, oh, ow = F.im2col(x, k, k, stride, pad, ws)
        grad_cols = rng.random(cols.shape, dtype=np.float32)

        im2col_s = _time_op(lambda: F.im2col(x, k, k, stride, pad, ws))
        col2im_s = _time_op(lambda: F.col2im(grad_cols, x.shape, k, k, stride, pad, ws))
        col2im_ref_s = _time_op(lambda: F.col2im_reference(grad_cols, x.shape, k, k, stride, pad))

        pooled, cache = F.maxpool2d_forward(x, 2, 2, ws)
        grad_pool = rng.random(pooled.shape, dtype=np.float32)
        maxpool_bwd_s = _time_op(lambda: F.maxpool2d_backward(grad_pool, cache))
        maxpool_ref_s = _time_op(lambda: F.maxpool2d_backward_reference(grad_pool, cache))

        rows.append(
            {
                "geometry": label,
                "shape": [n, c, size, size],
                "kernel": k,
                "im2col_us": round(im2col_s * 1e6, 2),
                "col2im_scatter_us": round(col2im_s * 1e6, 2),
                "col2im_loop_reference_us": round(col2im_ref_s * 1e6, 2),
                "col2im_speedup": round(col2im_ref_s / col2im_s, 2),
                "maxpool_bwd_bincount_us": round(maxpool_bwd_s * 1e6, 2),
                "maxpool_bwd_reference_us": round(maxpool_ref_s * 1e6, 2),
                "maxpool_bwd_speedup": round(maxpool_ref_s / maxpool_bwd_s, 2),
            }
        )
    return rows


class _PayloadSpy(Executor):
    """Serial executor that pickles every task/result, counting bytes.

    ``is_interprocess`` is True so the transport layer takes the same
    spill path it would for a real process pool.
    """

    name = "payload-spy"
    is_interprocess = True

    def __init__(self):
        super().__init__(None)
        self.task_bytes = 0
        self.result_bytes = 0

    def map(self, tasks):
        results = []
        for task in tasks:
            self.task_bytes += len(pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL))
            result = pickle.loads(pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL)).run()
            self.result_bytes += len(pickle.dumps(result, protocol=pickle.HIGHEST_PROTOCOL))
            results.append(result)
        return results


def measure_transport(num_rounds: int) -> list[dict]:
    """Pickled bytes per round, slice/delta transport vs full shipping."""
    rows = []
    accuracies = {}
    for transport in ("full", "delta"):
        setting = ExperimentSetting(**{**BENCH_SETTING_KWARGS, "transport": transport})
        prepared = prepare_experiment(setting)
        algorithm = get_algorithm("adaptivefl").build(prepared)
        spy = _PayloadSpy()
        algorithm.set_executor(spy)
        history = algorithm.run(num_rounds=num_rounds)
        accuracies[transport] = history.final_accuracy("full")
        rows.append(
            {
                "transport": transport,
                "algorithm": "adaptivefl",
                "rounds": num_rounds,
                "task_payload_bytes_per_round": round(spy.task_bytes / num_rounds),
                "result_payload_bytes_per_round": round(spy.result_bytes / num_rounds),
            }
        )
    # the transport modes must be bit-identical — re-checked under timing
    for row in rows:
        row["parity"] = accuracies["full"] == accuracies["delta"]
    return rows


def measure_end_to_end(
    num_rounds: int, repeats: int, executors: Sequence[tuple[str, int | None]]
) -> list[dict]:
    setting = ExperimentSetting(
        **{**BENCH_SETTING_KWARGS, "overrides": {"num_rounds": num_rounds, "eval_every": 2}}
    )
    prepared = prepare_experiment(setting)
    rows = []
    reference_accuracy: dict[str, float] = {}
    for name in available_algorithms():
        for executor_name, workers in executors:
            def one_run():
                algorithm = get_algorithm(name).build(prepared)
                executor = create_executor(executor_name, workers)
                algorithm.set_executor(executor)
                try:
                    history = algorithm.run()
                finally:
                    executor.shutdown()
                one_run.accuracy = history.final_accuracy("full")

            one_run()  # untimed warm-up: workspaces, scatter indices, BLAS
            seconds = _best_of(one_run, repeats)
            accuracy = one_run.accuracy
            if executor_name == "serial":
                reference_accuracy[name] = accuracy
            row = {
                "algorithm": name,
                "executor": executor_name,
                "workers": workers,
                "rounds": num_rounds,
                "seconds": round(seconds, 4),
                "rounds_per_second": round(num_rounds / seconds, 4),
                # the engine's bit-parity guarantee, re-checked under timing
                "parity": accuracy == reference_accuracy[name],
            }
            pre = PRE_PR_REFERENCE["serial_rounds_per_second"].get(name)
            if executor_name == "serial" and pre and num_rounds == PRE_PR_REFERENCE["rounds"]:
                row["speedup_vs_pre_pr"] = round(row["rounds_per_second"] / pre, 2)
            rows.append(row)
    return rows


def run_benchmark(quick: bool) -> dict:
    num_rounds = 2 if quick else 4
    repeats = 2 if quick else 5
    executors: list[tuple[str, int | None]] = [("serial", None)]
    if not quick:
        executors.append(("process", 2))
    payload = {
        "benchmark": "hotpaths",
        "quick": quick,
        "cpu_count": os.cpu_count(),
        "setting": ExperimentSetting(**BENCH_SETTING_KWARGS).to_dict(),
        "pre_pr_reference": PRE_PR_REFERENCE,
        "calibration": measure_calibration(),
        "micro": measure_micro(),
        "transport": measure_transport(2 if quick else 3),
        "end_to_end": measure_end_to_end(num_rounds, repeats, executors),
    }
    gflops = payload["calibration"]["gemm_gflops"]
    for row in payload["end_to_end"]:
        row["normalized_rounds_per_gflop"] = round(row["rounds_per_second"] / gflops, 5)
    return payload


def check_regression(payload: dict, baseline_path: Path, tolerance: float) -> list[str]:
    """Compare normalised serial rounds/sec against the committed baseline."""
    baseline = json.loads(baseline_path.read_text(encoding="utf-8"))
    failures = []
    current = {
        row["algorithm"]: row["normalized_rounds_per_gflop"]
        for row in payload["end_to_end"]
        if row["executor"] == "serial"
    }
    for name, reference in baseline["normalized_serial_rounds_per_gflop"].items():
        measured = current.get(name)
        if measured is None:
            failures.append(f"{name}: missing from current run")
            continue
        floor = reference * (1.0 - tolerance)
        if measured < floor:
            failures.append(
                f"{name}: normalized serial throughput {measured:.5f} fell below "
                f"{floor:.5f} ({reference:.5f} committed, {tolerance:.0%} tolerance)"
            )
    return failures


def write_baseline(payload: dict, path: Path) -> None:
    baseline = {
        "source": "benchmarks/bench_hotpaths.py --write-baseline",
        "gemm_gflops": payload["calibration"]["gemm_gflops"],
        "normalized_serial_rounds_per_gflop": {
            row["algorithm"]: row["normalized_rounds_per_gflop"]
            for row in payload["end_to_end"]
            if row["executor"] == "serial"
        },
    }
    path.write_text(json.dumps(baseline, indent=2) + "\n", encoding="utf-8")


def render(payload: dict) -> str:
    lines = [
        f"hot paths — {payload['cpu_count']} CPU(s), "
        f"{payload['calibration']['gemm_gflops']:.1f} GFLOP/s f32 GEMM",
        "",
        f"{'geometry':<12} {'im2col us':>10} {'col2im us':>10} {'(loop ref)':>11} {'maxpool us':>11} {'(ref)':>8}",
    ]
    for row in payload["micro"]:
        lines.append(
            f"{row['geometry']:<12} {row['im2col_us']:>10.1f} {row['col2im_scatter_us']:>10.1f} "
            f"{row['col2im_loop_reference_us']:>11.1f} {row['maxpool_bwd_bincount_us']:>11.1f} "
            f"{row['maxpool_bwd_reference_us']:>8.1f}"
        )
    lines.append("")
    lines.append(f"{'transport':<10} {'task bytes/round':>17} {'result bytes/round':>19}  parity")
    for row in payload["transport"]:
        lines.append(
            f"{row['transport']:<10} {row['task_payload_bytes_per_round']:>17,} "
            f"{row['result_payload_bytes_per_round']:>19,}  {row['parity']}"
        )
    lines.append("")
    lines.append(f"{'algorithm':<12} {'executor':<9} {'rounds/s':>9} {'vs pre-PR':>10}  parity")
    for row in payload["end_to_end"]:
        speedup = row.get("speedup_vs_pre_pr")
        lines.append(
            f"{row['algorithm']:<12} {row['executor']:<9} {row['rounds_per_second']:>9.3f} "
            f"{(f'{speedup:.2f}x' if speedup else '-'):>10}  {row['parity']}"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true", help="CI-sized sweep (fewer rounds/repeats, serial only)")
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_hotpaths.json",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help="committed baseline JSON; when given, fail on >tolerance regression",
    )
    parser.add_argument("--tolerance", type=float, default=0.30)
    parser.add_argument(
        "--write-baseline",
        type=Path,
        default=None,
        help="write the normalised baseline JSON for the regression gate",
    )
    args = parser.parse_args(argv)

    payload = run_benchmark(args.quick)
    print(render(payload))
    args.output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")

    if args.write_baseline is not None:
        write_baseline(payload, args.write_baseline)
        print(f"wrote baseline {args.write_baseline}")
    if args.baseline is not None:
        failures = check_regression(payload, args.baseline, args.tolerance)
        if failures:
            for failure in failures:
                print(f"PERF REGRESSION: {failure}")
            return 1
        print(f"perf gate passed ({args.tolerance:.0%} tolerance)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
