"""Scenario sweep: system dynamics of every registered fleet scenario.

Runs AdaptiveFL for a few CI-scale rounds under every scenario in the
:mod:`repro.sim` registry (plus the no-scenario reference) and records the
system-level outcomes into ``BENCH_scenarios.json``: simulated wall-clock,
dispatched/dropped client slots, deadline behaviour and bytes moved.  The
point is not accuracy — it is that each scenario produces the dynamics it
advertises (drops in ``flaky_edge``, queueing stragglers in
``congested_network``, sit-outs in ``battery_constrained``) while staying
bit-deterministic at a fixed seed.

Run as a script (writes the JSON)::

    python benchmarks/bench_scenarios.py
    python benchmarks/bench_scenarios.py --rounds 8 --algorithm heterofl

or through pytest-benchmark (attaches the table to ``extra_info``)::

    PYTHONPATH=src python -m pytest benchmarks/bench_scenarios.py -q
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import Sequence

from repro.experiments import ExperimentSetting, prepare_experiment, run_algorithm
from repro.sim.scenario import available_scenarios

BENCH_ROUNDS = 5
BENCH_OVERRIDES = {"num_rounds": BENCH_ROUNDS, "eval_every": BENCH_ROUNDS}


def scenario_setting(scenario: str | None, rounds: int) -> ExperimentSetting:
    overrides = dict(BENCH_OVERRIDES)
    overrides["num_rounds"] = rounds
    overrides["eval_every"] = rounds
    return ExperimentSetting(
        dataset="cifar10", model="simple_cnn", scale="ci", scenario=scenario, overrides=overrides
    )


def run_scenario(scenario: str | None, algorithm: str, rounds: int) -> dict:
    prepared = prepare_experiment(scenario_setting(scenario, rounds))
    result = run_algorithm(algorithm, prepared)
    history = result.history
    records = history.records
    dispatched = sum(len(r.selected_clients) for r in records)
    dropped = history.total_dropped()
    arrivals = [a for r in records for a in r.arrival_seconds if a is not None]
    return {
        "scenario": scenario or "(none)",
        "algorithm": algorithm,
        "rounds": len(records),
        "sim_seconds": round(history.elapsed_seconds(), 4),
        "dispatched_slots": dispatched,
        "dropped_slots": dropped,
        "drop_rate": round(dropped / dispatched, 4) if dispatched else 0.0,
        "deadline_rounds": sum(1 for r in records if r.deadline_seconds is not None),
        "mean_arrival_seconds": round(sum(arrivals) / len(arrivals), 4) if arrivals else None,
        "bytes_down_mb": round(sum(r.bytes_down or 0 for r in records) / 1e6, 3),
        "bytes_up_mb": round(sum(r.bytes_up or 0 for r in records) / 1e6, 3),
        "full_accuracy": round(result.full_accuracy, 4),
    }


def run_benchmark(algorithm: str, rounds: int) -> dict:
    rows = [run_scenario(None, algorithm, rounds)]
    for name in available_scenarios():
        rows.append(run_scenario(name, algorithm, rounds))
    return {
        "benchmark": "scenarios",
        "algorithm": algorithm,
        "rounds": rounds,
        "results": rows,
    }


def render(payload: dict) -> str:
    lines = [
        f"scenario sweep — {payload['algorithm']}, {payload['rounds']} rounds",
        f"{'scenario':<20} {'sim s':>10} {'slots':>6} {'dropped':>8} {'drop %':>7} "
        f"{'dl MB':>7} {'ul MB':>7} {'acc %':>6}",
    ]
    for row in payload["results"]:
        lines.append(
            f"{row['scenario']:<20} {row['sim_seconds']:>10.2f} {row['dispatched_slots']:>6} "
            f"{row['dropped_slots']:>8} {100 * row['drop_rate']:>6.1f}% "
            f"{row['bytes_down_mb']:>7.2f} {row['bytes_up_mb']:>7.2f} {100 * row['full_accuracy']:>5.1f}%"
        )
    return "\n".join(lines)


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--algorithm", default="adaptivefl")
    parser.add_argument("--rounds", type=int, default=BENCH_ROUNDS)
    parser.add_argument(
        "--output",
        type=Path,
        default=Path(__file__).resolve().parent.parent / "BENCH_scenarios.json",
    )
    args = parser.parse_args(argv)
    payload = run_benchmark(args.algorithm, args.rounds)
    print(render(payload))
    args.output.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.output}")
    return 0


def test_scenario_sweep(benchmark):
    """pytest-benchmark entry: one sweep, table attached to extra_info."""
    payload = benchmark.pedantic(lambda: run_benchmark("adaptivefl", BENCH_ROUNDS), rounds=1, iterations=1)
    print("\n" + render(payload))
    benchmark.extra_info["results"] = payload["results"]
    rows = {row["scenario"]: row for row in payload["results"]}
    # every scenario times its rounds; the no-scenario reference does not
    assert rows["(none)"]["sim_seconds"] == 0.0
    assert all(row["sim_seconds"] > 0 for name, row in rows.items() if name != "(none)")
    # flaky_edge advertises dropouts/deadline misses and over-selection
    assert rows["flaky_edge"]["dropped_slots"] > 0
    assert rows["flaky_edge"]["deadline_rounds"] == rows["flaky_edge"]["rounds"]
    # the static scenarios never drop anyone
    assert rows["paper_testbed"]["dropped_slots"] == 0
    assert rows["stable_lab"]["dropped_slots"] == 0


if __name__ == "__main__":
    raise SystemExit(main())
