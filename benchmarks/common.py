"""Shared helpers for the benchmark harness.

Every benchmark regenerates one table or figure of the paper at a reduced
(CI) scale: the absolute accuracies differ from the publication (synthetic
data, smaller models, far fewer rounds — see DESIGN.md §2), but each bench
prints the same rows/series the paper reports together with the published
numbers so the *shape* of the result can be compared directly.

All benches are macro-benchmarks: they run once per pytest-benchmark round
(``rounds=1, iterations=1``) and attach their result rows to
``benchmark.extra_info`` so the JSON output carries the reproduced numbers.
"""

from __future__ import annotations

from repro.experiments import ExperimentSetting, run_comparison

#: rounds used by the CI-scale benchmark runs
BENCH_ROUNDS = 6
BENCH_OVERRIDES = {"num_rounds": BENCH_ROUNDS, "eval_every": 3}


def bench_setting(**kwargs) -> ExperimentSetting:
    """A CI-scale experiment setting with benchmark-friendly overrides."""
    overrides = dict(BENCH_OVERRIDES)
    overrides.update(kwargs.pop("overrides", {}))
    kwargs.setdefault("dataset", "cifar10")
    kwargs.setdefault("model", "simple_cnn")
    kwargs.setdefault("scale", "ci")
    return ExperimentSetting(overrides=overrides, **kwargs)


def run_algorithms(setting: ExperimentSetting, algorithms, **kwargs):
    """Run several algorithms on one shared prepared experiment (paired)."""
    return run_comparison(setting, tuple(algorithms), **kwargs)


def once(benchmark, func):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, rounds=1, iterations=1)
