"""Figure 2 — learning curves (avg submodel accuracy vs round).

Reproduces the CIFAR-10-like IID panel at CI scale for the four
heterogeneous methods the figure plots (Decoupled, HeteroFL, ScaleFL,
AdaptiveFL) and prints each method's (round, accuracy) series.
"""

from repro.experiments import render_learning_curves

from common import bench_setting, once, run_algorithms

ALGORITHMS = ("decoupled", "heterofl", "scalefl", "adaptivefl")


def test_fig2_learning_curves_cifar10_iid(benchmark):
    setting = bench_setting(distribution="iid", overrides={"num_rounds": 8, "eval_every": 2})
    results = once(benchmark, lambda: run_algorithms(setting, ALGORITHMS))
    print("\nFigure 2(a) — CIFAR-10-like IID learning curves (avg accuracy %, CI scale)")
    print(render_learning_curves(results, kind="avg"))
    benchmark.extra_info["curves"] = {
        name: result.history.accuracy_curve("avg") for name, result in results.items()
    }
    for result in results.values():
        rounds, values = result.history.accuracy_curve("avg")
        assert len(rounds) >= 2
        assert all(0.0 <= value <= 1.0 for value in values)
