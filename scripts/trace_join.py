#!/usr/bin/env python
"""Stitch server- and client-side telemetry logs into per-task timelines.

Every task the coordinator dispatches carries a ``trace_id`` (minted per
round) and a ``span_id`` (minted per dispatched task).  The server log
(``repro serve --telemetry``) records ``task_dispatch`` /
``straggler_requeue`` / ``task_result`` under those ids; each worker's
log (``repro client --event-log``) records ``task_start`` /
``task_upload`` under the same ids, because the ids ride the wire inside
the dispatch frame.  Joining the logs on ``(trace_id, span_id)``
therefore reconstructs the full life of each task across processes:

    dispatch (server) -> start (client) -> upload (client) -> result (server)

Usage::

    PYTHONPATH=src python scripts/trace_join.py server.jsonl worker-*.jsonl
    PYTHONPATH=src python scripts/trace_join.py --require-complete 4 --json ...

``--require-complete N`` exits non-zero unless at least N timelines
contain all four stages — the CI obs-smoke gate uses it to prove the
propagation path end to end.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path

#: the four stages of a complete cross-process task timeline, in order
STAGES = ("task_dispatch", "task_start", "task_upload", "task_result")

#: task-scoped event types joined on (trace_id, span_id)
TASK_EVENTS = set(STAGES) | {"straggler_requeue"}


def load_events(paths: list[Path]) -> list[dict]:
    """Parse every JSONL line of every log; skip blank/partial lines."""
    events: list[dict] = []
    for path in paths:
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                text = line.strip()
                if not text:
                    continue
                try:
                    event = json.loads(text)
                except json.JSONDecodeError:
                    continue  # partial trailing write from a live run
                if isinstance(event, dict) and "type" in event:
                    events.append(event)
    return events


def join_timelines(events: list[dict]) -> dict[tuple[str, str], list[dict]]:
    """Group task-scoped events by ``(trace_id, span_id)``, time-ordered."""
    timelines: dict[tuple[str, str], list[dict]] = defaultdict(list)
    for event in events:
        if event["type"] not in TASK_EVENTS:
            continue
        trace_id = event.get("trace_id", "")
        span_id = event.get("span_id", "")
        if not trace_id or not span_id:
            continue  # pre-telemetry frames or schema-1 peers
        timelines[(trace_id, span_id)].append(event)
    for timeline in timelines.values():
        timeline.sort(key=lambda event: event.get("timestamp", 0.0))
    return dict(timelines)


def is_complete(timeline: list[dict]) -> bool:
    """Whether all four stages are present (requeued spans stay partial)."""
    types = {event["type"] for event in timeline}
    return all(stage in types for stage in STAGES)


def render(timelines: dict[tuple[str, str], list[dict]]) -> str:
    """Human-readable per-span timelines with relative offsets."""
    lines: list[str] = []
    for (trace_id, span_id), timeline in sorted(timelines.items()):
        status = "complete" if is_complete(timeline) else "partial"
        lines.append(f"{trace_id} / {span_id}  ({status})")
        origin = timeline[0].get("timestamp", 0.0)
        for event in timeline:
            offset = event.get("timestamp", 0.0) - origin
            source = event.get("source", "") or "-"
            detail = " ".join(
                f"{key}={event['data'][key]}" for key in sorted(event.get("data", {}))
            )
            lines.append(f"  +{offset:8.4f}s {event['type']:<18} [{source}] {detail}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    """Join the given logs; 0 iff the completeness requirement is met."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("logs", nargs="+", type=Path, help="telemetry JSONL files (server and/or clients)")
    parser.add_argument(
        "--require-complete",
        type=int,
        default=0,
        metavar="N",
        help="fail unless at least N timelines contain all four stages",
    )
    parser.add_argument("--json", action="store_true", help="emit machine-readable JSON instead of text")
    args = parser.parse_args(argv)

    events = load_events(args.logs)
    timelines = join_timelines(events)
    complete = sum(1 for timeline in timelines.values() if is_complete(timeline))

    if args.json:
        payload = {
            "events": len(events),
            "timelines": len(timelines),
            "complete": complete,
            "spans": [
                {
                    "trace_id": trace_id,
                    "span_id": span_id,
                    "complete": is_complete(timeline),
                    "events": timeline,
                }
                for (trace_id, span_id), timeline in sorted(timelines.items())
            ],
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(render(timelines))
        print(f"\n{len(events)} events -> {len(timelines)} task timelines, {complete} complete")

    if args.require_complete and complete < args.require_complete:
        print(
            f"trace-join: FAIL: {complete} complete timelines, need {args.require_complete}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
