#!/usr/bin/env python
"""End-to-end smoke test for the networked federation service.

Runs the same experiment twice from the command line — once with
``repro run`` (serial, in-process) and once with ``repro serve`` plus
two ``repro client`` worker processes over loopback — then asserts the
two ``<algorithm>_history.json`` files are identical.  This is the CI
acceptance gate for ``repro.serve``: if the coordinator, the wire
protocol, or the client runner drift from the engine's determinism
contract, the histories diverge and the script exits non-zero.

Usage::

    PYTHONPATH=src python scripts/serve_smoke.py [--rounds 2] [--algorithm adaptivefl]
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
LISTEN_LINE = re.compile(r"repro-serve: listening on (\S+):(\d+)")


def run_serial(algorithm: str, rounds: int, scale: str, output_dir: Path) -> None:
    """Produce the serial reference history via ``repro run``."""
    subprocess.run(
        [
            sys.executable, "-m", "repro", "run",
            "--algorithm", algorithm, "--scale", scale,
            "--rounds", str(rounds), "--quiet",
            "--output-dir", str(output_dir),
        ],
        cwd=REPO_ROOT,
        check=True,
        timeout=600,
    )


def run_remote(algorithm: str, rounds: int, scale: str, output_dir: Path, clients: int) -> None:
    """Run the same experiment through ``repro serve`` + worker processes."""
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--algorithm", algorithm, "--scale", scale,
            "--rounds", str(rounds), "--quiet",
            "--output-dir", str(output_dir),
            "--port", "0", "--expect-clients", str(clients),
            "--heartbeat-interval", "1", "--connect-timeout", "60",
        ],
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        text=True,
    )
    workers: list[subprocess.Popen] = []
    try:
        # the coordinator announces its bound (ephemeral) port on stdout
        port = None
        assert server.stdout is not None
        for line in server.stdout:
            match = LISTEN_LINE.search(line)
            if match:
                port = match.group(2)
                break
        if port is None:
            raise RuntimeError("server exited before announcing its address")
        workers = [
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "client",
                    "--port", port, "--name", f"smoke-{index}",
                    "--backoff-base", "0.05", "--quiet",
                ],
                cwd=REPO_ROOT,
            )
            for index in range(clients)
        ]
        # drain the rest of stdout so the server never blocks on a full pipe
        for _ in server.stdout:
            pass
        if server.wait(timeout=600) != 0:
            raise RuntimeError(f"repro serve exited with {server.returncode}")
        # an orderly shutdown sends bye to every worker: they must exit 0
        for index, worker in enumerate(workers):
            if worker.wait(timeout=30) != 0:
                raise RuntimeError(f"worker smoke-{index} exited with {worker.returncode}")
    finally:
        for process in [server, *workers]:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)


def main(argv: list[str] | None = None) -> int:
    """Run both paths and diff the histories; 0 iff bit-identical."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--algorithm", default="adaptivefl")
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--scale", default="ci")
    parser.add_argument("--clients", type=int, default=2)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="serve_smoke_") as tmp:
        serial_dir = Path(tmp) / "serial"
        remote_dir = Path(tmp) / "remote"
        print(f"[serve-smoke] serial reference: {args.algorithm}, {args.rounds} rounds")
        run_serial(args.algorithm, args.rounds, args.scale, serial_dir)
        print(f"[serve-smoke] networked run: {args.clients} clients over loopback")
        run_remote(args.algorithm, args.rounds, args.scale, remote_dir, args.clients)

        history = f"{args.algorithm}_history.json"
        serial = json.loads((serial_dir / history).read_text(encoding="utf-8"))
        remote = json.loads((remote_dir / history).read_text(encoding="utf-8"))
        if serial != remote:
            print(f"[serve-smoke] FAIL: {history} differs between serial and remote runs")
            return 1
    print(f"[serve-smoke] OK: {history} bit-identical between serial and remote runs")
    return 0


if __name__ == "__main__":
    sys.exit(main())
