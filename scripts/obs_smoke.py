#!/usr/bin/env python
"""End-to-end smoke test for the telemetry stack (repro.obs).

Runs one loopback ``repro serve`` experiment with telemetry fully on —
server event log, per-worker event logs, and the HTTP status endpoint —
then asserts the three observability claims the docs make:

1. the ``/metrics`` endpoint serves parseable Prometheus text exposition
   containing the fleet metrics (``rounds_total``, ``bytes_up_total``…);
2. ``scripts/trace_join.py`` can join the server and client logs into at
   least ``--require-complete`` full dispatch→start→upload→result task
   timelines (trace ids really propagate across the wire);
3. telemetry is an observer: the run's history file is bit-identical to
   a serial run without any telemetry attached.

Usage::

    PYTHONPATH=src python scripts/obs_smoke.py [--rounds 2] [--clients 2]
"""

from __future__ import annotations

import argparse
import json
import re
import subprocess
import sys
import tempfile
import time
import urllib.error
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
LISTEN_LINE = re.compile(r"repro-serve: listening on (\S+):(\d+)")
STATUS_LINE = re.compile(r"repro-serve: status endpoint on http://(\S+):(\d+)/metrics")

#: metric families the scrape must contain for the gate to pass
REQUIRED_METRICS = ("rounds_total", "results_total", "bytes_up_total", "bytes_down_total")


def parse_prometheus(text: str) -> dict[str, float]:
    """Strictly parse text exposition into ``{sample_name: value}``.

    Raises ``ValueError`` on any line that is neither a comment nor a
    well-formed ``name[{labels}] value`` sample — this is the "a real
    Prometheus scraper would accept it" check, without needing one.
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        if not line or line.startswith("#"):
            continue
        match = re.fullmatch(r"([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)", line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {line!r}")
        samples[match.group(1) + (match.group(2) or "")] = float(match.group(3))
    return samples


def scrape(url: str) -> str | None:
    """One GET attempt; ``None`` when the endpoint is not reachable."""
    try:
        with urllib.request.urlopen(url, timeout=5) as response:  # noqa: S310 - loopback smoke test
            return response.read().decode("utf-8")
    except (urllib.error.URLError, ConnectionError, TimeoutError):
        return None


def run_serial(algorithm: str, rounds: int, scale: str, output_dir: Path) -> None:
    """Produce the telemetry-free serial reference history."""
    subprocess.run(
        [
            sys.executable, "-m", "repro", "run",
            "--algorithm", algorithm, "--scale", scale,
            "--rounds", str(rounds), "--quiet",
            "--output-dir", str(output_dir),
        ],
        cwd=REPO_ROOT,
        check=True,
        timeout=600,
    )


def run_remote_with_telemetry(
    algorithm: str, rounds: int, scale: str, output_dir: Path, clients: int, logs_dir: Path
) -> tuple[str, list[Path]]:
    """Serve + workers with telemetry on; returns (last scrape, log paths)."""
    server_log = logs_dir / "server.jsonl"
    server = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--algorithm", algorithm, "--scale", scale,
            "--rounds", str(rounds), "--quiet",
            "--output-dir", str(output_dir),
            "--port", "0", "--expect-clients", str(clients),
            "--heartbeat-interval", "1", "--connect-timeout", "60",
            "--telemetry", str(server_log), "--status-port", "0",
        ],
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
        text=True,
    )
    workers: list[subprocess.Popen] = []
    worker_logs: list[Path] = []
    exposition = None
    try:
        port = status_port = None
        assert server.stdout is not None
        for line in server.stdout:
            if (match := LISTEN_LINE.search(line)) is not None:
                port = match.group(2)
            elif (match := STATUS_LINE.search(line)) is not None:
                status_port = match.group(2)
            if port is not None and status_port is not None:
                break
        if port is None or status_port is None:
            raise RuntimeError("server exited before announcing its addresses")
        for index in range(clients):
            worker_logs.append(logs_dir / f"worker-{index}.jsonl")
            workers.append(
                subprocess.Popen(
                    [
                        sys.executable, "-m", "repro", "client",
                        "--port", port, "--name", f"obs-{index}",
                        "--backoff-base", "0.05", "--quiet",
                        "--event-log", str(worker_logs[-1]),
                    ],
                    cwd=REPO_ROOT,
                )
            )
        # scrape while the run is live; keep the latest successful scrape
        url = f"http://127.0.0.1:{status_port}/metrics"
        while server.poll() is None:
            body = scrape(url)
            if body is not None:
                exposition = body
            time.sleep(0.2)
        for _ in server.stdout:
            pass
        if server.wait(timeout=600) != 0:
            raise RuntimeError(f"repro serve exited with {server.returncode}")
        for index, worker in enumerate(workers):
            if worker.wait(timeout=30) != 0:
                raise RuntimeError(f"worker obs-{index} exited with {worker.returncode}")
    finally:
        for process in [server, *workers]:
            if process.poll() is None:
                process.kill()
                process.wait(timeout=10)
    if exposition is None:
        raise RuntimeError("status endpoint was never scrapeable during the run")
    return exposition, [server_log, *worker_logs]


def main(argv: list[str] | None = None) -> int:
    """Run the telemetry-on loopback experiment and check all three gates."""
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--algorithm", default="adaptivefl")
    parser.add_argument("--rounds", type=int, default=2)
    parser.add_argument("--scale", default="ci")
    parser.add_argument("--clients", type=int, default=2)
    parser.add_argument("--require-complete", type=int, default=1)
    parser.add_argument(
        "--keep-logs", type=Path, default=None, help="copy the JSONL logs here (CI artifact upload)"
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="obs_smoke_") as tmp:
        serial_dir = Path(tmp) / "serial"
        remote_dir = Path(tmp) / "remote"
        logs_dir = args.keep_logs if args.keep_logs is not None else Path(tmp) / "logs"
        logs_dir.mkdir(parents=True, exist_ok=True)

        print(f"[obs-smoke] serial reference: {args.algorithm}, {args.rounds} rounds")
        run_serial(args.algorithm, args.rounds, args.scale, serial_dir)
        print(f"[obs-smoke] telemetry-on networked run: {args.clients} clients over loopback")
        exposition, logs = run_remote_with_telemetry(
            args.algorithm, args.rounds, args.scale, remote_dir, args.clients, logs_dir
        )

        # gate 1: the scrape parses and carries the fleet metrics
        samples = parse_prometheus(exposition)
        missing = [name for name in REQUIRED_METRICS if name not in samples]
        if missing:
            print(f"[obs-smoke] FAIL: /metrics scrape lacks {missing}")
            return 1
        print(f"[obs-smoke] /metrics parsed: {len(samples)} samples, rounds_total={samples['rounds_total']:g}")

        # gate 2: trace ids join across server and client logs
        join = subprocess.run(
            [
                sys.executable, str(REPO_ROOT / "scripts" / "trace_join.py"),
                *[str(path) for path in logs if path.exists()],
                "--require-complete", str(args.require_complete), "--json",
            ],
            cwd=REPO_ROOT,
            capture_output=True,
            text=True,
            timeout=60,
        )
        if join.returncode != 0:
            print(f"[obs-smoke] FAIL: trace join: {join.stderr.strip()}")
            return 1
        joined = json.loads(join.stdout)
        print(f"[obs-smoke] trace join: {joined['complete']}/{joined['timelines']} timelines complete")

        # gate 3: telemetry observed without perturbing the run
        history = f"{args.algorithm}_history.json"
        serial = json.loads((serial_dir / history).read_text(encoding="utf-8"))
        remote = json.loads((remote_dir / history).read_text(encoding="utf-8"))
        if serial != remote:
            print(f"[obs-smoke] FAIL: {history} differs between serial and telemetry-on remote runs")
            return 1
    print(f"[obs-smoke] OK: {history} bit-identical; telemetry pipeline verified end to end")
    return 0


if __name__ == "__main__":
    sys.exit(main())
