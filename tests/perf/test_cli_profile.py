"""CLI integration of the perf layer: --profile and --transport flags."""

import json

from repro.api.cli import main
from repro.api.spec import ExperimentSpec


class TestCliProfileFlag:
    def test_profile_writes_summary_and_prints_table(self, tmp_path, capsys):
        rc = main(
            [
                "run", "--algorithm", "heterofl", "--scale", "ci", "--rounds", "1",
                "--profile", "--quiet", "--output-dir", str(tmp_path),
            ]
        )
        assert rc == 0
        profile_path = tmp_path / "heterofl_profile.json"
        assert profile_path.exists()
        payload = json.loads(profile_path.read_text(encoding="utf-8"))
        names = {scope["name"] for scope in payload["scopes"]}
        assert "round" in names and "round.training" in names
        out = capsys.readouterr().out
        assert "profile — heterofl" in out
        assert "round.training" in out

    def test_transport_flag_recorded_in_spec(self, tmp_path):
        rc = main(
            [
                "run", "--algorithm", "heterofl", "--scale", "ci", "--rounds", "1",
                "--transport", "full", "--quiet", "--output-dir", str(tmp_path),
            ]
        )
        assert rc == 0
        spec = ExperimentSpec.load(tmp_path / "spec.json")
        assert spec.setting.transport == "full"

    def test_no_profile_flag_writes_no_profile(self, tmp_path):
        rc = main(
            [
                "run", "--algorithm", "heterofl", "--scale", "ci", "--rounds", "1",
                "--quiet", "--output-dir", str(tmp_path),
            ]
        )
        assert rc == 0
        assert not (tmp_path / "heterofl_profile.json").exists()
