"""Profiler unit tests and its threading through FederatedAlgorithm.run."""

import numpy as np

from repro.core.config import AdaptiveFLConfig, FederatedConfig, LocalTrainingConfig
from repro.core.server import AdaptiveFL
from repro.perf.profiler import Profiler, render_summary


class TestProfiler:
    def test_disabled_is_a_noop(self):
        profiler = Profiler(enabled=False)
        with profiler.scope("x"):
            pass
        profiler.count("c", 5)
        assert profiler.summary() == {"scopes": [], "counters": {}}

    def test_scopes_accumulate(self):
        profiler = Profiler(enabled=True)
        for _ in range(3):
            with profiler.scope("x"):
                pass
        profiler.count("c", 2)
        profiler.count("c", 3)
        summary = profiler.summary()
        assert summary["scopes"][0]["name"] == "x"
        assert summary["scopes"][0]["calls"] == 3
        assert summary["counters"] == {"c": 5.0}
        assert "x" in profiler.render()

    def test_reset(self):
        profiler = Profiler(enabled=True)
        with profiler.scope("x"):
            pass
        profiler.reset()
        assert profiler.summary() == {"scopes": [], "counters": {}}

    def test_backing_registry_exposes_scopes_and_counters(self):
        profiler = Profiler(enabled=True)
        with profiler.scope("round.training"):
            pass
        profiler.count("transport.bytes_up", 128)
        exposition = profiler.registry.render()
        assert "profile_scope_round_training_count 1" in exposition
        assert "profile_counter_transport_bytes_up 128" in exposition


class TestRenderSummary:
    def test_empty_profiler_renders_header_only(self):
        text = render_summary(Profiler(enabled=True).summary())
        lines = text.splitlines()
        assert len(lines) == 1
        assert lines[0].split() == ["scope", "calls", "seconds", "avg", "ms"]

    def test_empty_dict_summary_is_tolerated(self):
        # summaries reloaded from a hand-edited profile.json may omit keys
        assert render_summary({}) == f"{'scope':<28} {'calls':>7} {'seconds':>10} {'avg ms':>9}"

    def test_zero_duration_scope_renders_zero_average(self):
        summary = {"scopes": [{"name": "noop", "calls": 0, "seconds": 0.0}], "counters": {}}
        text = render_summary(summary)
        assert "noop" in text
        assert "0.000" in text  # avg ms must not divide by zero

    def test_title_and_counter_formatting(self):
        summary = {
            "scopes": [],
            "counters": {"bytes": 1234567.0, "ratio": 0.5},
        }
        text = render_summary(summary, title="profile — x")
        assert text.startswith("profile — x")
        assert "1,234,567" in text  # integral counters grouped, no decimals
        assert "0.500" in text


class TestRunProfiling:
    def test_run_profile_collects_phases_and_counters(self, easy_setup):
        federated = FederatedConfig(num_rounds=2, clients_per_round=3, eval_every=2)
        local = LocalTrainingConfig(local_epochs=1, batch_size=16, max_batches_per_epoch=2)
        algorithm = AdaptiveFL(
            architecture=easy_setup["arch"],
            train_dataset=easy_setup["train"],
            partition=easy_setup["partition"],
            test_dataset=easy_setup["test"],
            profiles=easy_setup["profiles"],
            resource_model=easy_setup["resource_model"],
            algorithm_config=AdaptiveFLConfig(federated=federated, local=local, pool=easy_setup["pool"]),
            seed=0,
        )
        history = algorithm.run(profile=True)
        assert len(history) == 2
        summary = algorithm.profiler.summary()
        names = {scope["name"] for scope in summary["scopes"]}
        assert {"round", "round.training", "round.aggregate", "evaluate"} <= names
        round_scope = next(s for s in summary["scopes"] if s["name"] == "round")
        assert round_scope["calls"] == 2
        counters = summary["counters"]
        assert counters.get("transport.publishes") == 2.0
        assert counters.get("transport.bytes_up", 0) > 0
        # modeled downlink is counted under delta transport too
        assert counters.get("transport.bytes_down", 0) > 0
        assert counters.get("workspace.buffer_hits", 0) > 0

    def test_unprofiled_run_disables_and_preserves_summary(self, easy_setup):
        federated = FederatedConfig(num_rounds=1, clients_per_round=3, eval_every=1)
        local = LocalTrainingConfig(local_epochs=1, batch_size=16, max_batches_per_epoch=2)
        algorithm = AdaptiveFL(
            architecture=easy_setup["arch"],
            train_dataset=easy_setup["train"],
            partition=easy_setup["partition"],
            test_dataset=easy_setup["test"],
            profiles=easy_setup["profiles"],
            resource_model=easy_setup["resource_model"],
            algorithm_config=AdaptiveFLConfig(federated=federated, local=local, pool=easy_setup["pool"]),
            seed=0,
        )
        algorithm.run(profile=True)
        first = algorithm.profiler.summary()
        algorithm.run()  # unprofiled: must turn the profiler off ...
        assert not algorithm.profiler.enabled
        # ... and must not pollute the profiled run's data
        assert algorithm.profiler.summary() == first

    def test_profiling_does_not_change_results(self, easy_setup):
        federated = FederatedConfig(num_rounds=1, clients_per_round=3, eval_every=1)
        local = LocalTrainingConfig(local_epochs=1, batch_size=16, max_batches_per_epoch=2)

        def build():
            return AdaptiveFL(
                architecture=easy_setup["arch"],
                train_dataset=easy_setup["train"],
                partition=easy_setup["partition"],
                test_dataset=easy_setup["test"],
                profiles=easy_setup["profiles"],
                resource_model=easy_setup["resource_model"],
                algorithm_config=AdaptiveFLConfig(federated=federated, local=local, pool=easy_setup["pool"]),
                seed=0,
            )

        plain = build()
        plain.run()
        profiled = build()
        profiled.run(profile=True)
        for key, value in plain.global_state.items():
            assert np.array_equal(value, profiled.global_state[key])
