"""Satellite: the training stack stays float32 end-to-end.

A full federated round — dataset, forward, backward, optimizer update,
upload, aggregation — must never silently promote to float64 (Python
scalar arithmetic and library helpers are the usual culprits)."""

import numpy as np

from repro.core.aggregation import ClientUpdate, aggregate_heterogeneous
from repro.core.config import AdaptiveFLConfig, FederatedConfig, LocalTrainingConfig
from repro.core.server import AdaptiveFL
from repro.data.loader import DataLoader
from repro.nn.losses import CrossEntropyLoss
from repro.nn.optim import SGD


def _assert_all_float32(state, label):
    for name, value in state.items():
        assert np.asarray(value).dtype == np.float32, f"{label}: {name} is {np.asarray(value).dtype}"


class TestDtypeStability:
    def test_dataset_and_model_start_float32(self, easy_setup):
        assert easy_setup["train"].images.dtype == np.float32
        model = easy_setup["arch"].build(rng=np.random.default_rng(0))
        _assert_all_float32(model.state_dict(), "initial state")

    def test_forward_backward_step_stay_float32(self, easy_setup):
        arch = easy_setup["arch"]
        model = arch.build(rng=np.random.default_rng(0))
        model.train()
        loader = DataLoader(easy_setup["train"], batch_size=16, shuffle=True, rng=np.random.default_rng(1))
        images, labels = next(iter(loader))
        assert images.dtype == np.float32

        logits = model(images)
        assert logits.dtype == np.float32

        loss_fn = CrossEntropyLoss()
        loss_fn(logits, labels)
        grad = loss_fn.backward()
        assert grad.dtype == np.float32
        model.backward(grad)
        for name, param in model.named_parameters():
            assert param.grad.dtype == np.float32, name

        optimizer = SGD(model.parameters(), lr=0.01, momentum=0.5, weight_decay=1e-4)
        optimizer.step()
        _assert_all_float32(model.state_dict(), "after step")

    def test_full_round_keeps_global_state_float32(self, easy_setup):
        federated = FederatedConfig(num_rounds=1, clients_per_round=3, eval_every=1)
        local = LocalTrainingConfig(local_epochs=1, batch_size=16, max_batches_per_epoch=2)
        algorithm = AdaptiveFL(
            architecture=easy_setup["arch"],
            train_dataset=easy_setup["train"],
            partition=easy_setup["partition"],
            test_dataset=easy_setup["test"],
            profiles=easy_setup["profiles"],
            resource_model=easy_setup["resource_model"],
            algorithm_config=AdaptiveFLConfig(federated=federated, local=local, pool=easy_setup["pool"]),
            seed=0,
        )
        _assert_all_float32(algorithm.global_state, "before round")
        algorithm.run()
        _assert_all_float32(algorithm.global_state, "after round")

    def test_aggregation_preserves_dtype(self):
        rng = np.random.default_rng(0)
        for dtype in (np.float32, np.float64):
            global_state = {"w": rng.normal(size=(6, 4)).astype(dtype)}
            updates = [
                ClientUpdate({"w": rng.normal(size=(4, 4)).astype(dtype)}, 3),
                ClientUpdate({"w": rng.normal(size=(6, 4)).astype(dtype)}, 5),
            ]
            merged = aggregate_heterogeneous(global_state, updates)
            assert merged["w"].dtype == dtype
