"""Equivalence tests of the vectorised scatter kernels against the
historical reference implementations, and workspace-reuse safety."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.dtype import default_dtype
from repro.nn.layers import Conv2d, DepthwiseConv2d
from repro.perf.workspace import Workspace


class TestMaxPoolBackwardEquivalence:
    """Satellite: flat-bincount maxpool backward == 4-axis add.at scatter."""

    @pytest.mark.parametrize("kernel,stride", [(2, 2), (3, 3), (3, 2), (2, 1)])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_matches_reference(self, kernel, stride, dtype):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(3, 4, 9, 9)).astype(dtype)
        out, cache = F.maxpool2d_forward(x, kernel, stride)
        grad_out = rng.normal(size=out.shape).astype(dtype)
        fast = F.maxpool2d_backward(grad_out, cache)
        reference = F.maxpool2d_backward_reference(grad_out, cache)
        assert fast.shape == reference.shape
        assert fast.dtype == dtype
        # accumulation order may differ where windows overlap, so the
        # comparison is allclose at dtype-appropriate resolution (exact
        # for the non-overlapping stride >= kernel cases)
        if stride >= kernel:
            assert np.array_equal(fast, reference)
        else:
            assert np.allclose(fast, reference, rtol=0, atol=np.finfo(dtype).eps * 64)

    def test_inference_cache_rejects_backward(self):
        x = np.random.default_rng(1).normal(size=(2, 2, 6, 6)).astype(np.float32)
        out, cache = F.maxpool2d_forward(x, 2, 2, need_argmax=False)
        reference, _ = F.maxpool2d_forward(x, 2, 2)
        assert np.array_equal(out, reference)
        with pytest.raises(RuntimeError):
            F.maxpool2d_backward(np.ones_like(out), cache)


class TestCol2ImEquivalence:
    @pytest.mark.parametrize("kernel,stride,padding", [(3, 1, 1), (5, 1, 2), (3, 2, 0), (2, 2, 1)])
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_scatter_matches_loop(self, kernel, stride, padding, dtype):
        rng = np.random.default_rng(2)
        x_shape = (3, 4, 8, 8)
        x = rng.normal(size=x_shape).astype(dtype)
        cols, _, _ = F.im2col(x, kernel, kernel, stride, padding)
        grad_cols = rng.normal(size=cols.shape).astype(dtype)
        fast = F.col2im(grad_cols, x_shape, kernel, kernel, stride, padding)
        reference = F.col2im_reference(grad_cols, x_shape, kernel, kernel, stride, padding)
        assert np.allclose(fast, reference, rtol=0, atol=np.finfo(dtype).eps * 128)


class TestWorkspaceReuseAcrossBatchSizes:
    """Satellite: the trailing partial batch must not read stale buffers."""

    def test_workspace_reallocates_on_shape_change(self):
        ws = Workspace()
        a = ws.get("k", (4, 4), np.float32)
        assert ws.get("k", (4, 4), np.float32) is a
        b = ws.get("k", (2, 4), np.float32)
        assert b is not a and b.shape == (2, 4)
        assert ws.get("k", (2, 4), np.float64).dtype == np.float64
        z = ws.zeros("z", (3,), np.float32)
        z += 1.0
        assert np.array_equal(ws.zeros("z", (3,), np.float32), np.zeros(3, dtype=np.float32))

    @pytest.mark.parametrize("layer_factory", [
        lambda rng: Conv2d(3, 5, 3, padding=1, rng=rng),
        lambda rng: Conv2d(3, 5, 5, stride=2, padding=2, rng=rng),
        lambda rng: DepthwiseConv2d(3, 3, padding=1, rng=rng),
    ])
    def test_partial_batch_after_full_batch(self, layer_factory):
        """forward/backward on a smaller batch after a larger one must be
        bit-identical to a fresh layer that never saw the large batch."""
        rng = np.random.default_rng(3)
        warm = layer_factory(np.random.default_rng(7))
        fresh = layer_factory(np.random.default_rng(7))

        big = rng.normal(size=(8, 3, 10, 10)).astype(np.float32)
        warm(big)
        warm.backward(np.ones_like(warm(big)))
        warm.zero_grad()

        small = rng.normal(size=(3, 3, 10, 10)).astype(np.float32)
        out_warm = warm(small.copy())
        out_fresh = fresh(small.copy())
        assert np.array_equal(out_warm, out_fresh)

        grad = rng.normal(size=out_warm.shape).astype(np.float32)
        grad_warm = warm.backward(grad.copy())
        grad_fresh = fresh.backward(grad.copy())
        assert np.array_equal(grad_warm, grad_fresh)
        assert np.array_equal(warm.weight.grad, fresh.weight.grad)

    def test_alternating_batch_sizes_keep_distinct_buffers(self):
        layer = Conv2d(2, 3, 3, padding=1, rng=np.random.default_rng(0))
        rng = np.random.default_rng(4)
        a = rng.normal(size=(6, 2, 8, 8)).astype(np.float32)
        b = rng.normal(size=(2, 2, 8, 8)).astype(np.float32)
        first_small = layer(b.copy()).copy()
        layer(a.copy())
        again_small = layer(b.copy())
        assert np.array_equal(first_small, again_small)


class TestBareFunctionalCallsDoNotAlias:
    def test_interleaved_forwards_keep_independent_caches(self):
        """ws=None calls must not share buffers: a second same-geometry
        forward may not corrupt the first call's cached columns."""
        rng = np.random.default_rng(5)
        w = rng.normal(size=(4, 3, 3, 3)).astype(np.float32)
        x1 = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        x2 = rng.normal(size=(2, 3, 6, 6)).astype(np.float32)
        grad = rng.normal(size=(2, 4, 6, 6)).astype(np.float32)

        _, cache_baseline = F.conv2d_forward(x1, w, None, 1, 1)
        _, gw_expected, _ = F.conv2d_backward(grad, cache_baseline)

        _, cache1 = F.conv2d_forward(x1, w, None, 1, 1)
        F.conv2d_forward(x2, w, None, 1, 1)  # same geometry, interleaved
        _, gw_actual, _ = F.conv2d_backward(grad, cache1)
        assert np.array_equal(gw_actual, gw_expected)


class TestFloat64Override:
    def test_context_builds_double_precision_layers(self):
        with default_dtype(np.float64):
            layer = Conv2d(2, 3, 3, rng=np.random.default_rng(0))
        assert layer.weight.data.dtype == np.float64
        layer32 = Conv2d(2, 3, 3, rng=np.random.default_rng(0))
        assert layer32.weight.data.dtype == np.float32
