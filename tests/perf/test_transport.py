"""Slice/delta transport: exact codecs, worker caching, and bit-parity
of delta transport against legacy full-weight transport."""

import pickle
from dataclasses import replace

import numpy as np
import pytest

from repro.baselines import HeteroFL
from repro.core.config import AdaptiveFLConfig, FederatedConfig, LocalTrainingConfig
from repro.core.server import AdaptiveFL
from repro.engine.base import Executor, run_task
from repro.engine.transport import (
    StateStore,
    apply_state_delta,
    decode_upload,
    encode_state_delta,
)

FEDERATED = FederatedConfig(num_rounds=2, clients_per_round=4, eval_every=2)
LOCAL = LocalTrainingConfig(local_epochs=1, batch_size=25, max_batches_per_epoch=3)


class PickleRoundTripExecutor(Executor):
    """Serial executor that pickles tasks and results, as a process pool
    would, and advertises itself as inter-process so the transport layer
    takes the spill-file path."""

    name = "pickle-roundtrip"
    is_interprocess = True

    def map(self, tasks):
        results = []
        for task in tasks:
            clone = pickle.loads(pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL))
            results.append(pickle.loads(pickle.dumps(run_task(clone), protocol=pickle.HIGHEST_PROTOCOL)))
        return results


class TestDeltaCodec:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_roundtrip_is_bit_exact(self, dtype):
        rng = np.random.default_rng(0)
        reference = {"w": rng.normal(size=(5, 3)).astype(dtype), "b": rng.normal(size=(5,)).astype(dtype)}
        trained = {name: (value + rng.normal(size=value.shape) * 1e-3).astype(dtype) for name, value in reference.items()}
        delta = encode_state_delta(trained, reference)
        decoded = apply_state_delta(delta, reference)
        for name in trained:
            # bit-exact, not just allclose: XOR of the IEEE-754 payloads
            assert np.array_equal(
                decoded[name].view(np.uint8), np.asarray(trained[name]).view(np.uint8)
            ), name

    def test_special_values_survive(self):
        reference = {"w": np.array([0.0, -0.0, 1.0, 2.0], dtype=np.float32)}
        trained = {"w": np.array([np.inf, -np.inf, np.nan, 2.0], dtype=np.float32)}
        decoded = apply_state_delta(encode_state_delta(trained, reference), reference)
        assert np.array_equal(decoded["w"].view(np.uint32), trained["w"].view(np.uint32))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            encode_state_delta({"w": np.zeros(3, np.float32)}, {"w": np.zeros(4, np.float32)})

    def test_decode_upload_passthrough_and_delta(self):
        reference = {"w": np.ones(3, np.float32)}
        raw = {"w": np.full(3, 2.0, np.float32)}
        assert decode_upload(raw, None) is raw
        delta = encode_state_delta(raw, reference)
        assert np.array_equal(decode_upload(delta, reference)["w"], raw["w"])
        with pytest.raises(ValueError):
            decode_upload(delta, None)


class TestStateStore:
    def test_inline_handle_returns_published_reference(self):
        store = StateStore("test")
        state = {"w": np.arange(4, dtype=np.float32)}
        handle = store.publish(state, spill=False)
        assert handle.load() is state

    def test_spilled_handle_survives_pickling_and_caches(self):
        store = StateStore("test")
        try:
            v1 = {"w": np.arange(4, dtype=np.float32)}
            handle = store.publish(v1, spill=True)
            clone = pickle.loads(pickle.dumps(handle))
            loaded = clone.load()
            assert np.array_equal(loaded["w"], v1["w"])
            # second load of the same version hits the worker cache
            assert clone.load() is loaded
            # a new version invalidates the cache
            v2 = {"w": np.arange(4, dtype=np.float32) * 2}
            handle2 = pickle.loads(pickle.dumps(store.publish(v2, spill=True)))
            assert np.array_equal(handle2.load()["w"], v2["w"])
        finally:
            store.close()

    def test_inline_only_handle_fails_across_pickle(self):
        store = StateStore("test")
        handle = store.publish({"w": np.zeros(2, np.float32)}, spill=False)
        clone = pickle.loads(pickle.dumps(handle))
        with pytest.raises(RuntimeError):
            clone.load()


def build_algorithm(name, easy_setup, transport, executor="serial"):
    federated = replace(FEDERATED, transport=transport, executor=executor, max_workers=2)
    kwargs = dict(
        architecture=easy_setup["arch"],
        train_dataset=easy_setup["train"],
        partition=easy_setup["partition"],
        test_dataset=easy_setup["test"],
        profiles=easy_setup["profiles"],
        resource_model=easy_setup["resource_model"],
        seed=0,
    )
    if name == "adaptivefl":
        return AdaptiveFL(
            algorithm_config=AdaptiveFLConfig(federated=federated, local=LOCAL, pool=easy_setup["pool"]),
            **kwargs,
        )
    return HeteroFL(federated_config=federated, local_config=LOCAL, **kwargs)


def fingerprint(algorithm):
    return [
        {
            "round": record.round_index,
            "selected": list(record.selected_clients),
            "dispatched": list(record.dispatched),
            "returned": list(record.returned),
            "train_loss": record.train_loss,
            "full_accuracy": record.full_accuracy,
            "avg_accuracy": record.avg_accuracy,
            "level_accuracies": dict(record.level_accuracies),
            "communication_waste": record.communication_waste,
        }
        for record in algorithm.history.records
    ]


class TestDeltaTransportParity:
    """Satellite: delta transport is bit-identical to full-weight transport
    (histories *and* final weights) for AdaptiveFL and HeteroFL."""

    @pytest.mark.parametrize("name", ["adaptivefl", "heterofl"])
    def test_serial_bit_identical(self, easy_setup, name):
        full = build_algorithm(name, easy_setup, "full")
        full.run()
        delta = build_algorithm(name, easy_setup, "delta")
        delta.run()
        assert fingerprint(delta) == fingerprint(full)
        assert set(delta.global_state) == set(full.global_state)
        for key, value in delta.global_state.items():
            assert np.array_equal(value, full.global_state[key]), f"weights differ in {key!r}"

    @pytest.mark.parametrize("name", ["adaptivefl", "heterofl"])
    def test_spill_path_bit_identical(self, easy_setup, name):
        """Same check across a real pickle boundary (spill files + worker
        cache + XOR-delta uploads), without the cost of a process pool."""
        full = build_algorithm(name, easy_setup, "full")
        full.run()
        delta = build_algorithm(name, easy_setup, "delta")
        delta.set_executor(PickleRoundTripExecutor())
        delta.run()
        assert fingerprint(delta) == fingerprint(full)
        for key, value in delta.global_state.items():
            assert np.array_equal(value, full.global_state[key]), f"weights differ in {key!r}"
