"""Baseline algorithm tests: All-Large, Decoupled, HeteroFL, ScaleFL."""

import numpy as np
import pytest

from repro.baselines import ALGORITHMS, AllLargeFedAvg, DecoupledFL, HeteroFL, ScaleFL, create_algorithm
from repro.baselines.base import capacity_level_assignment
from repro.baselines.scalefl import calibrate_width_ratio, two_dimensional_group_sizes


def build_baseline(cls, tiny_cnn, tiny_federated_setup, fast_configs, **extra):
    setup = tiny_federated_setup
    kwargs = dict(
        architecture=tiny_cnn,
        train_dataset=setup["train"],
        partition=setup["partition"],
        test_dataset=setup["test"],
        profiles=setup["profiles"],
        federated_config=fast_configs["federated"],
        local_config=fast_configs["local"],
        resource_model=setup["resource_model"],
        seed=0,
    )
    if cls is not HeteroFL:
        kwargs["pool_config"] = fast_configs["pool"]
    kwargs.update(extra)
    return cls(**kwargs)


class TestRegistry:
    def test_algorithm_names(self):
        assert set(ALGORITHMS) == {"all_large", "decoupled", "heterofl", "scalefl"}

    def test_create_algorithm_unknown(self):
        with pytest.raises(KeyError):
            create_algorithm("fedprox")


class TestAllLarge:
    def test_dispatches_full_model_with_zero_waste(self, tiny_cnn, tiny_federated_setup, fast_configs):
        algorithm = build_baseline(AllLargeFedAvg, tiny_cnn, tiny_federated_setup, fast_configs)
        record = algorithm.run_round(0)
        assert all(name == "L1" for name in record.dispatched)
        assert record.communication_waste == pytest.approx(0.0)

    def test_round_changes_global_state(self, tiny_cnn, tiny_federated_setup, fast_configs):
        algorithm = build_baseline(AllLargeFedAvg, tiny_cnn, tiny_federated_setup, fast_configs)
        before = {k: v.copy() for k, v in algorithm.global_state.items()}
        algorithm.run_round(0)
        assert any(not np.allclose(algorithm.global_state[k], before[k]) for k in before)

    def test_run_produces_history(self, tiny_cnn, tiny_federated_setup, fast_configs):
        algorithm = build_baseline(AllLargeFedAvg, tiny_cnn, tiny_federated_setup, fast_configs)
        history = algorithm.run()
        assert history.final_accuracy("full") >= 0.0


class TestDecoupled:
    def test_levels_stay_isolated(self, tiny_cnn, tiny_federated_setup, fast_configs):
        """A round that only trains one level must leave the other level states
        untouched — the defining property of the Decoupled baseline."""
        algorithm = build_baseline(DecoupledFL, tiny_cnn, tiny_federated_setup, fast_configs)
        before = {level: {k: v.copy() for k, v in state.items()} for level, state in algorithm.level_states.items()}
        record = algorithm.run_round(0)
        trained_levels = {name[0] for name in record.dispatched}
        for level, state in algorithm.level_states.items():
            changed = any(not np.allclose(state[k], before[level][k]) for k in state)
            if level in trained_levels:
                assert changed
            else:
                assert not changed

    def test_assignment_respects_capacity(self, tiny_cnn, tiny_federated_setup, fast_configs):
        algorithm = build_baseline(DecoupledFL, tiny_cnn, tiny_federated_setup, fast_configs)
        for client_id, level in algorithm.client_level.items():
            capacity = algorithm.resource_model.nominal_capacity(client_id)
            smallest = min(algorithm.level_heads.values(), key=lambda cfg: cfg.num_params)
            assigned = algorithm.level_heads[level]
            assert assigned.num_params <= capacity or assigned.name == smallest.name

    def test_evaluation_uses_per_level_states(self, tiny_cnn, tiny_federated_setup, fast_configs):
        algorithm = build_baseline(DecoupledFL, tiny_cnn, tiny_federated_setup, fast_configs)
        algorithm.run_round(0)
        full_accuracy, level_accuracies = algorithm.evaluate()
        assert set(level_accuracies) == {"S", "M", "L"}
        assert 0.0 <= full_accuracy <= 1.0


class TestHeteroFL:
    def test_every_layer_pruned_in_small_level(self, tiny_cnn, tiny_federated_setup, fast_configs):
        algorithm = build_baseline(HeteroFL, tiny_cnn, tiny_federated_setup, fast_configs)
        small_sizes = algorithm.pool.group_sizes(algorithm.level_heads["S"])
        full_sizes = algorithm.architecture.full_group_sizes()
        assert all(small_sizes[name] < full_sizes[name] for name in full_sizes if full_sizes[name] > 1)

    def test_static_assignment_and_waste_free_rounds(self, tiny_cnn, tiny_federated_setup, fast_configs):
        algorithm = build_baseline(HeteroFL, tiny_cnn, tiny_federated_setup, fast_configs)
        record = algorithm.run_round(0)
        assert record.communication_waste == pytest.approx(0.0)
        for client_id, name in zip(record.selected_clients, record.dispatched):
            assert name == f"{algorithm.client_level[client_id]}1"

    def test_run_loop(self, tiny_cnn, tiny_federated_setup, fast_configs):
        algorithm = build_baseline(HeteroFL, tiny_cnn, tiny_federated_setup, fast_configs)
        history = algorithm.run()
        assert len(history) == fast_configs["federated"].num_rounds


class TestScaleFL:
    def test_two_dimensional_sizes(self, tiny_cnn):
        sizes = two_dimensional_group_sizes(tiny_cnn, width_ratio=0.5, depth_fraction=0.5, tail_ratio=0.1)
        max_layer = tiny_cnn.num_prunable_layers()
        cutoff = int(np.ceil(0.5 * max_layer))
        for group in tiny_cnn.channel_groups():
            if group.layer_index <= cutoff:
                assert sizes[group.name] == max(1, int(group.full_size * 0.5))
            else:
                assert sizes[group.name] <= max(1, int(group.full_size * 0.1) + 1)

    def test_calibration_hits_target_budget(self, tiny_vgg):
        width = calibrate_width_ratio(tiny_vgg, target_fraction=0.5, depth_fraction=0.75, tail_ratio=0.15)
        sizes = two_dimensional_group_sizes(tiny_vgg, width, 0.75, 0.15)
        fraction = tiny_vgg.parameter_count(sizes) / tiny_vgg.parameter_count()
        assert fraction == pytest.approx(0.5, abs=0.08)

    def test_level_budgets_ordered(self, tiny_cnn, tiny_federated_setup, fast_configs):
        algorithm = build_baseline(ScaleFL, tiny_cnn, tiny_federated_setup, fast_configs)
        assert algorithm.level_params["S"] < algorithm.level_params["M"] < algorithm.level_params["L"]
        assert algorithm.level_params["L"] == tiny_cnn.parameter_count()

    def test_round_and_evaluation(self, tiny_cnn, tiny_federated_setup, fast_configs):
        algorithm = build_baseline(ScaleFL, tiny_cnn, tiny_federated_setup, fast_configs)
        record = algorithm.run_round(0)
        assert len(record.dispatched) == fast_configs["federated"].clients_per_round
        full_accuracy, level_accuracies = algorithm.evaluate()
        assert set(level_accuracies) == {"S", "M", "L"}
        assert 0.0 <= full_accuracy <= 1.0


class TestCapacityAssignment:
    def test_largest_affordable_level_chosen(self, tiny_cnn, tiny_federated_setup, fast_configs):
        algorithm = build_baseline(AllLargeFedAvg, tiny_cnn, tiny_federated_setup, fast_configs)
        levels = {"S": 10, "M": 1_000, "L": 10**9}
        assignment = capacity_level_assignment(algorithm, levels)
        for client_id, level in assignment.items():
            capacity = algorithm.resource_model.nominal_capacity(client_id)
            assert levels[level] <= capacity or level == "S"
