"""Heterogeneous aggregation tests (Algorithm 2 of the paper)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import ClientUpdate, aggregate_heterogeneous, fedavg_aggregate
from repro.core.pruning import extract_submodel_state


class TestAggregateHeterogeneous:
    def test_single_full_update_replaces_global(self):
        global_state = {"w": np.zeros((4, 4))}
        update = ClientUpdate({"w": np.ones((4, 4))}, num_samples=10)
        merged = aggregate_heterogeneous(global_state, [update])
        assert np.allclose(merged["w"], 1.0)

    def test_uncovered_elements_keep_old_values(self):
        global_state = {"w": np.full((4, 4), 7.0)}
        update = ClientUpdate({"w": np.ones((2, 2))}, num_samples=5)
        merged = aggregate_heterogeneous(global_state, [update])
        assert np.allclose(merged["w"][:2, :2], 1.0)
        assert np.allclose(merged["w"][2:, :], 7.0)
        assert np.allclose(merged["w"][:2, 2:], 7.0)

    def test_data_size_weighting(self):
        global_state = {"w": np.zeros(2)}
        updates = [
            ClientUpdate({"w": np.array([1.0, 1.0])}, num_samples=30),
            ClientUpdate({"w": np.array([4.0, 4.0])}, num_samples=10),
        ]
        merged = aggregate_heterogeneous(global_state, updates)
        assert np.allclose(merged["w"], (30 * 1 + 10 * 4) / 40)

    def test_overlap_region_mixes_only_contributors(self):
        """Small update covers a prefix; large update covers everything.  The
        suffix must average only the large update."""
        global_state = {"w": np.zeros(4)}
        updates = [
            ClientUpdate({"w": np.array([2.0, 2.0])}, num_samples=1),
            ClientUpdate({"w": np.array([4.0, 4.0, 4.0, 4.0])}, num_samples=1),
        ]
        merged = aggregate_heterogeneous(global_state, updates)
        assert np.allclose(merged["w"][:2], 3.0)
        assert np.allclose(merged["w"][2:], 4.0)

    def test_no_updates_returns_copy(self):
        global_state = {"w": np.ones(3)}
        merged = aggregate_heterogeneous(global_state, [])
        assert np.allclose(merged["w"], 1.0)
        merged["w"] += 1
        assert np.allclose(global_state["w"], 1.0)

    def test_non_prefix_shape_raises(self):
        global_state = {"w": np.zeros((2, 2))}
        update = ClientUpdate({"w": np.zeros((3, 2))}, num_samples=1)
        with pytest.raises(ValueError):
            aggregate_heterogeneous(global_state, [update])

    def test_invalid_sample_count(self):
        with pytest.raises(ValueError):
            ClientUpdate({"w": np.zeros(2)}, num_samples=0)

    @settings(max_examples=15, deadline=None)
    @given(
        sizes=st.lists(st.integers(1, 6), min_size=1, max_size=4),
        weights=st.lists(st.integers(1, 50), min_size=1, max_size=4),
    )
    def test_identical_updates_are_a_fixed_point(self, sizes, weights):
        """Property: aggregating identical prefix updates reproduces their
        values exactly in the covered region, regardless of weights."""
        count = min(len(sizes), len(weights))
        global_state = {"w": np.zeros(8)}
        value = np.arange(1.0, 9.0)
        updates = [
            ClientUpdate({"w": value[: sizes[i]].copy()}, num_samples=weights[i]) for i in range(count)
        ]
        merged = aggregate_heterogeneous(global_state, updates)
        covered = max(sizes[:count])
        assert np.allclose(merged["w"][:covered], value[:covered])
        assert np.allclose(merged["w"][covered:], 0.0)

    def test_with_real_submodel_states(self, tiny_pool):
        """Aggregating slices of the same global model must leave it unchanged."""
        global_state = tiny_pool.architecture.build(rng=np.random.default_rng(0)).state_dict()
        updates = [
            ClientUpdate(extract_submodel_state(global_state, tiny_pool, tiny_pool.by_name(name)), num_samples=n)
            for name, n in [("S3", 10), ("M2", 20), ("L1", 5)]
        ]
        merged = aggregate_heterogeneous(global_state, updates)
        for name, value in merged.items():
            assert np.allclose(value, global_state[name], atol=1e-12)


class TestFedAvg:
    def test_weighted_mean(self):
        updates = [
            ClientUpdate({"w": np.array([0.0])}, num_samples=1),
            ClientUpdate({"w": np.array([10.0])}, num_samples=3),
        ]
        merged = fedavg_aggregate(updates)
        assert merged["w"][0] == pytest.approx(7.5)

    def test_requires_updates(self):
        with pytest.raises(ValueError):
            fedavg_aggregate([])

    def test_heterogeneous_shapes_rejected(self):
        updates = [
            ClientUpdate({"w": np.zeros(2)}, num_samples=1),
            ClientUpdate({"w": np.zeros(3)}, num_samples=1),
        ]
        with pytest.raises(ValueError):
            fedavg_aggregate(updates)
