"""Memory-bounded streaming aggregation (begin_round / add / finalize).

The streaming API must be **bit-identical** to the historical one-shot
``aggregate`` — per (name, element) the accumulation order over uploads
equals the call order either way — while never holding more than one
decoded upload plus the reused buffers.
"""

import numpy as np
import pytest

from repro.core.aggregation import ClientUpdate, HeterogeneousAggregator, aggregate_heterogeneous


def make_updates(rng, count=5, full=(6, 4)):
    updates = []
    for i in range(count):
        rows = int(rng.integers(2, full[0] + 1))
        cols = int(rng.integers(1, full[1] + 1))
        state = {
            "w": rng.normal(size=(rows, cols)),
            "b": rng.normal(size=(rows,)),
        }
        updates.append(ClientUpdate(state, num_samples=int(rng.integers(1, 100))))
    return updates


@pytest.fixture
def global_state():
    rng = np.random.default_rng(0)
    return {"w": rng.normal(size=(6, 4)), "b": rng.normal(size=(6,))}


class TestStreamingBitParity:
    def test_begin_add_finalize_equals_one_shot(self, global_state):
        updates = make_updates(np.random.default_rng(1))
        one_shot = aggregate_heterogeneous(global_state, updates)

        aggregator = HeterogeneousAggregator()
        aggregator.begin_round(global_state)
        for update in updates:
            aggregator.add(update)
        streamed = aggregator.finalize()
        for name in one_shot:
            assert np.array_equal(one_shot[name], streamed[name]), name

    def test_generator_input_equals_list_input(self, global_state):
        updates = make_updates(np.random.default_rng(2))
        aggregator = HeterogeneousAggregator()
        from_list = aggregator.aggregate(global_state, updates)
        from_generator = aggregator.aggregate(global_state, (u for u in updates))
        for name in from_list:
            assert np.array_equal(from_list[name], from_generator[name]), name

    def test_buffers_are_reused_across_rounds(self, global_state):
        aggregator = HeterogeneousAggregator()
        first = aggregator.aggregate(global_state, make_updates(np.random.default_rng(3)))
        buffers_after_first = {name: id(aggregator._buffers[name][0]) for name in aggregator._buffers}
        second = aggregator.aggregate(first, make_updates(np.random.default_rng(4)))
        assert {name: id(aggregator._buffers[name][0]) for name in aggregator._buffers} == buffers_after_first
        # and the reuse did not leak round 1 mass into round 2
        fresh = HeterogeneousAggregator().aggregate(first, make_updates(np.random.default_rng(4)))
        for name in second:
            assert np.array_equal(second[name], fresh[name]), name

    def test_zero_upload_round_returns_copy_of_old_state(self, global_state):
        aggregator = HeterogeneousAggregator()
        aggregator.begin_round(global_state)
        merged = aggregator.finalize()
        for name, value in global_state.items():
            assert np.array_equal(merged[name], value)
            assert merged[name] is not value


class TestRoundLifecycle:
    def test_double_begin_rejected(self, global_state):
        aggregator = HeterogeneousAggregator()
        aggregator.begin_round(global_state)
        with pytest.raises(RuntimeError, match="already open"):
            aggregator.begin_round(global_state)

    def test_add_and_finalize_require_open_round(self, global_state):
        aggregator = HeterogeneousAggregator()
        with pytest.raises(RuntimeError, match="no open round"):
            aggregator.add(ClientUpdate({"w": np.ones((2, 2))}, 1))
        with pytest.raises(RuntimeError, match="no open round"):
            aggregator.finalize()

    def test_abort_clears_the_open_round(self, global_state):
        aggregator = HeterogeneousAggregator()
        aggregator.begin_round(global_state)
        aggregator.abort_round()
        with pytest.raises(RuntimeError, match="no open round"):
            aggregator.finalize()
        aggregator.begin_round(global_state)  # reusable after abort
        aggregator.finalize()

    def test_failing_generator_aborts_the_round(self, global_state):
        aggregator = HeterogeneousAggregator()

        def exploding():
            yield ClientUpdate({"w": np.ones((2, 2)), "b": np.ones(2)}, 1)
            raise RuntimeError("decode failed")

        with pytest.raises(RuntimeError, match="decode failed"):
            aggregator.aggregate(global_state, exploding())
        # the aborted round left no half-open state behind
        result = aggregator.aggregate(global_state, [])
        for name, value in global_state.items():
            assert np.array_equal(result[name], value)
