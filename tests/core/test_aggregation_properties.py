"""Property-style tests of Algorithm 2's heterogeneous aggregation.

Two structural properties pinned with hypothesis:

* **FedAvg reduction** — when every upload covers the full tensor shapes,
  heterogeneous aggregation *is* classic FedAvg (same weighted mean).
* **Coverage boundary** (Algorithm 2, line 14) — elements covered by no
  upload keep their previous global value exactly; covered elements never
  depend on the old value.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import ClientUpdate, aggregate_heterogeneous, fedavg_aggregate

SHAPES = ((4,), (3, 5), (2, 3, 2))


def _states(rng: np.random.Generator, prefixes: list[float]) -> list[dict[str, np.ndarray]]:
    """One state dict per client; ``prefixes[i]`` scales every tensor extent."""
    states = []
    for fraction in prefixes:
        state = {}
        for axis_count, shape in enumerate(SHAPES):
            cut = tuple(max(1, int(np.ceil(extent * fraction))) for extent in shape)
            state[f"w{axis_count}"] = rng.normal(size=cut)
        states.append(state)
    return states


@settings(max_examples=25, deadline=None)
@given(
    weights=st.lists(st.integers(1, 100), min_size=1, max_size=5),
    seed=st.integers(0, 2**16),
)
def test_full_shape_uploads_reduce_to_fedavg(weights, seed):
    """Full-coverage heterogeneous aggregation == fedavg_aggregate."""
    rng = np.random.default_rng(seed)
    global_state = {f"w{i}": rng.normal(size=shape) for i, shape in enumerate(SHAPES)}
    states = _states(rng, [1.0] * len(weights))
    updates = [ClientUpdate(state, samples) for state, samples in zip(states, weights)]

    heterogeneous = aggregate_heterogeneous(global_state, updates)
    fedavg = fedavg_aggregate(updates)

    assert set(heterogeneous) == set(fedavg)
    for name in fedavg:
        np.testing.assert_allclose(heterogeneous[name], fedavg[name], rtol=0, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(
    prefixes=st.lists(st.sampled_from([0.25, 0.5, 0.75, 1.0]), min_size=1, max_size=5),
    weights=st.lists(st.integers(1, 100), min_size=5, max_size=5),
    seed=st.integers(0, 2**16),
)
def test_uncovered_elements_keep_previous_values(prefixes, weights, seed):
    """Algorithm 2, line 14: the coverage mask splits the output exactly."""
    rng = np.random.default_rng(seed)
    global_state = {f"w{i}": rng.normal(size=shape) for i, shape in enumerate(SHAPES)}
    states = _states(rng, prefixes)
    updates = [ClientUpdate(state, samples) for state, samples in zip(states, weights)]

    merged = aggregate_heterogeneous(global_state, updates)

    for name, old_value in global_state.items():
        weight_sum = np.zeros_like(old_value)
        accumulator = np.zeros_like(old_value)
        for update in updates:
            tensor = update.state[name]
            region = tuple(slice(0, extent) for extent in tensor.shape)
            weight_sum[region] += update.num_samples
            accumulator[region] += update.num_samples * tensor
        uncovered = weight_sum == 0
        # uncovered elements: *exactly* the old bits survive
        assert np.array_equal(merged[name][uncovered], old_value[uncovered])
        # covered elements: the weighted mean of contributors, old value ignored
        np.testing.assert_allclose(
            merged[name][~uncovered],
            accumulator[~uncovered] / weight_sum[~uncovered],
            rtol=0,
            atol=1e-12,
        )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**16), samples=st.integers(1, 1000))
def test_covered_region_is_independent_of_old_global_values(seed, samples):
    """Replacing the old global state must not move any covered element."""
    rng = np.random.default_rng(seed)
    update_state = {f"w{i}": rng.normal(size=shape) for i, shape in enumerate(SHAPES)}
    updates = [ClientUpdate(update_state, samples)]
    merged_a = aggregate_heterogeneous(
        {f"w{i}": np.zeros(shape) for i, shape in enumerate(SHAPES)}, updates
    )
    merged_b = aggregate_heterogeneous(
        {f"w{i}": rng.normal(size=shape) * 100 for i, shape in enumerate(SHAPES)}, updates
    )
    for name in update_state:
        assert np.array_equal(merged_a[name], merged_b[name])
