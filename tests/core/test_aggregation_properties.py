"""Property-style tests of Algorithm 2's heterogeneous aggregation.

Structural properties pinned with hypothesis:

* **FedAvg reduction** — when every upload covers the full tensor shapes,
  heterogeneous aggregation *is* classic FedAvg (same weighted mean).
* **Coverage boundary** (Algorithm 2, line 14) — elements covered by no
  upload keep their previous global value exactly; covered elements never
  depend on the old value.
* **Quantization stability** — aggregating codec-quantized uploads stays
  within the worst contributing client's per-element quantization step of
  the exact aggregate (a weighted mean never amplifies codec error).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aggregation import ClientUpdate, aggregate_heterogeneous, fedavg_aggregate
from repro.engine.codecs import decode_update, encode_update, get_codec

SHAPES = ((4,), (3, 5), (2, 3, 2))


def _states(rng: np.random.Generator, prefixes: list[float]) -> list[dict[str, np.ndarray]]:
    """One state dict per client; ``prefixes[i]`` scales every tensor extent."""
    states = []
    for fraction in prefixes:
        state = {}
        for axis_count, shape in enumerate(SHAPES):
            cut = tuple(max(1, int(np.ceil(extent * fraction))) for extent in shape)
            state[f"w{axis_count}"] = rng.normal(size=cut)
        states.append(state)
    return states


@settings(max_examples=25, deadline=None)
@given(
    weights=st.lists(st.integers(1, 100), min_size=1, max_size=5),
    seed=st.integers(0, 2**16),
)
def test_full_shape_uploads_reduce_to_fedavg(weights, seed):
    """Full-coverage heterogeneous aggregation == fedavg_aggregate."""
    rng = np.random.default_rng(seed)
    global_state = {f"w{i}": rng.normal(size=shape) for i, shape in enumerate(SHAPES)}
    states = _states(rng, [1.0] * len(weights))
    updates = [ClientUpdate(state, samples) for state, samples in zip(states, weights)]

    heterogeneous = aggregate_heterogeneous(global_state, updates)
    fedavg = fedavg_aggregate(updates)

    assert set(heterogeneous) == set(fedavg)
    for name in fedavg:
        np.testing.assert_allclose(heterogeneous[name], fedavg[name], rtol=0, atol=1e-12)


@settings(max_examples=25, deadline=None)
@given(
    prefixes=st.lists(st.sampled_from([0.25, 0.5, 0.75, 1.0]), min_size=1, max_size=5),
    weights=st.lists(st.integers(1, 100), min_size=5, max_size=5),
    seed=st.integers(0, 2**16),
)
def test_uncovered_elements_keep_previous_values(prefixes, weights, seed):
    """Algorithm 2, line 14: the coverage mask splits the output exactly."""
    rng = np.random.default_rng(seed)
    global_state = {f"w{i}": rng.normal(size=shape) for i, shape in enumerate(SHAPES)}
    states = _states(rng, prefixes)
    updates = [ClientUpdate(state, samples) for state, samples in zip(states, weights)]

    merged = aggregate_heterogeneous(global_state, updates)

    for name, old_value in global_state.items():
        weight_sum = np.zeros_like(old_value)
        accumulator = np.zeros_like(old_value)
        for update in updates:
            tensor = update.state[name]
            region = tuple(slice(0, extent) for extent in tensor.shape)
            weight_sum[region] += update.num_samples
            accumulator[region] += update.num_samples * tensor
        uncovered = weight_sum == 0
        # uncovered elements: *exactly* the old bits survive
        assert np.array_equal(merged[name][uncovered], old_value[uncovered])
        # covered elements: the weighted mean of contributors, old value ignored
        np.testing.assert_allclose(
            merged[name][~uncovered],
            accumulator[~uncovered] / weight_sum[~uncovered],
            rtol=0,
            atol=1e-12,
        )


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**16), samples=st.integers(1, 1000))
def test_covered_region_is_independent_of_old_global_values(seed, samples):
    """Replacing the old global state must not move any covered element."""
    rng = np.random.default_rng(seed)
    update_state = {f"w{i}": rng.normal(size=shape) for i, shape in enumerate(SHAPES)}
    updates = [ClientUpdate(update_state, samples)]
    merged_a = aggregate_heterogeneous(
        {f"w{i}": np.zeros(shape) for i, shape in enumerate(SHAPES)}, updates
    )
    merged_b = aggregate_heterogeneous(
        {f"w{i}": rng.normal(size=shape) * 100 for i, shape in enumerate(SHAPES)}, updates
    )
    for name in update_state:
        assert np.array_equal(merged_a[name], merged_b[name])


# -- aggregation under codec-quantized uploads (compressed transport tier) ---------------


def _per_element_step(codec_name: str, tensor: np.ndarray) -> np.ndarray:
    """Worst-case per-element reconstruction error of one quantized tensor."""
    work = np.abs(tensor).astype(np.float32)
    if codec_name == "int8":
        # symmetric lattice: every element rounds within one scale step
        peak = float(work.max()) if work.size else 0.0
        return np.full(tensor.shape, peak / 127.0, dtype=np.float64)
    # fp16 stochastic rounding lands on a neighbouring float16 grid point,
    # so the error is bounded by the local grid spacing
    return np.spacing(work.astype(np.float16)).astype(np.float64)


def _quantize(codec_name: str, state: dict, seed: int) -> dict:
    codec = get_codec(codec_name)
    rng = np.random.default_rng(seed)
    return decode_update(encode_update(codec, state, rng))


@settings(max_examples=20, deadline=None)
@given(
    codec_name=st.sampled_from(["int8", "fp16"]),
    prefixes=st.lists(st.sampled_from([0.25, 0.5, 0.75, 1.0]), min_size=1, max_size=5),
    weights=st.lists(st.integers(1, 100), min_size=5, max_size=5),
    seed=st.integers(0, 2**16),
)
def test_quantized_uploads_aggregate_within_per_element_codec_bound(
    codec_name, prefixes, weights, seed
):
    """|agg(quantized) - agg(exact)| <= max contributing client's step.

    The aggregate is a per-element convex combination of the uploads, so
    its error can never exceed the largest single-client quantization
    error among the clients covering that element; uncovered elements
    (kept from the old global state) must not move at all.
    """
    rng = np.random.default_rng(seed)
    global_state = {f"w{i}": rng.normal(size=shape) for i, shape in enumerate(SHAPES)}
    states = _states(rng, prefixes)
    exact = [ClientUpdate(state, samples) for state, samples in zip(states, weights)]
    quantized = [
        ClientUpdate(_quantize(codec_name, state, seed + client), samples)
        for client, (state, samples) in enumerate(zip(states, weights))
    ]

    merged_exact = aggregate_heterogeneous(global_state, exact)
    merged_quantized = aggregate_heterogeneous(global_state, quantized)

    for name, old_value in global_state.items():
        # elementwise bound: max step over the clients covering each element
        bound = np.zeros(old_value.shape, dtype=np.float64)
        covered = np.zeros(old_value.shape, dtype=bool)
        for update in exact:
            tensor = update.state[name]
            region = tuple(slice(0, extent) for extent in tensor.shape)
            np.maximum(bound[region], _per_element_step(codec_name, tensor), out=bound[region])
            covered[region] = True
        error = np.abs(merged_quantized[name] - merged_exact[name])
        assert np.array_equal(error[~covered], np.zeros(np.count_nonzero(~covered)))
        # 1e-6 absorbs the float32 encode/accumulate round-trip on top of
        # the lattice step itself
        assert np.all(error[covered] <= bound[covered] + 1e-6), (
            f"{codec_name} aggregation error exceeds the codec step in {name!r}: "
            f"max overshoot {np.max(error[covered] - bound[covered])}"
        )


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**16), samples=st.integers(1, 1000))
def test_unanimous_quantized_upload_is_reproduced_exactly(seed, samples):
    """N identical quantized uploads aggregate to that quantized tensor."""
    rng = np.random.default_rng(seed)
    global_state = {f"w{i}": rng.normal(size=shape) for i, shape in enumerate(SHAPES)}
    state = _quantize("int8", {name: rng.normal(size=v.shape) for name, v in global_state.items()}, seed)
    updates = [ClientUpdate(state, samples) for _ in range(3)]
    merged = aggregate_heterogeneous(global_state, updates)
    for name in global_state:
        np.testing.assert_allclose(merged[name], state[name], rtol=0, atol=1e-12)
