"""AdaptiveFL's selector backend knob (dense vs streaming RL tables)."""

import numpy as np
import pytest

from repro.core.config import AdaptiveFLConfig
from repro.core.rl_selection import RLClientSelector, StreamingRLClientSelector
from repro.core.server import AdaptiveFL
from repro.sim.cohorts import STREAMING_SELECTION_THRESHOLD


def make_adaptivefl(tiny_cnn, tiny_federated_setup, fast_configs, backend="auto", seed=0):
    config = AdaptiveFLConfig(
        federated=fast_configs["federated"],
        local=fast_configs["local"],
        pool=fast_configs["pool"],
        selector_backend=backend,
    )
    setup = tiny_federated_setup
    return AdaptiveFL(
        architecture=tiny_cnn,
        train_dataset=setup["train"],
        partition=setup["partition"],
        test_dataset=setup["test"],
        profiles=setup["profiles"],
        resource_model=setup["resource_model"],
        algorithm_config=config,
        seed=seed,
    )


class TestBackendResolution:
    def test_config_validates_backend(self):
        with pytest.raises(ValueError, match="selector_backend"):
            AdaptiveFLConfig(selector_backend="gpu")

    def test_backend_round_trips_through_config_dict(self):
        config = AdaptiveFLConfig(selector_backend="streaming")
        assert AdaptiveFLConfig.from_dict(config.to_dict()) == config

    def test_auto_picks_dense_below_threshold(self, tiny_cnn, tiny_federated_setup, fast_configs):
        algorithm = make_adaptivefl(tiny_cnn, tiny_federated_setup, fast_configs, backend="auto")
        assert algorithm.num_clients < STREAMING_SELECTION_THRESHOLD
        assert algorithm.selector_backend == "dense"
        assert isinstance(algorithm.selector, RLClientSelector)

    def test_explicit_streaming_builds_streaming_selector(self, tiny_cnn, tiny_federated_setup, fast_configs):
        algorithm = make_adaptivefl(tiny_cnn, tiny_federated_setup, fast_configs, backend="streaming")
        assert algorithm.selector_backend == "streaming"
        assert isinstance(algorithm.selector, StreamingRLClientSelector)


class TestStreamingRuns:
    def test_streaming_backend_runs_and_is_deterministic(self, tiny_cnn, tiny_federated_setup, fast_configs):
        first = make_adaptivefl(tiny_cnn, tiny_federated_setup, fast_configs, backend="streaming")
        second = make_adaptivefl(tiny_cnn, tiny_federated_setup, fast_configs, backend="streaming")
        history_a = first.run()
        history_b = second.run()
        assert history_a.to_dict() == history_b.to_dict()
        for name in first.global_state:
            assert np.array_equal(first.global_state[name], second.global_state[name]), name

    def test_streaming_touches_only_selected_clients(self, tiny_cnn, tiny_federated_setup, fast_configs):
        algorithm = make_adaptivefl(tiny_cnn, tiny_federated_setup, fast_configs, backend="streaming")
        record = algorithm.run_round(0)
        assert algorithm.selector.num_touched == len(set(record.selected_clients))


class TestCheckpointFormats:
    def collect(self, algorithm):
        arrays: dict[str, np.ndarray] = {}
        algorithm._collect_extra_state(arrays, {})
        return arrays

    def test_streaming_state_round_trips(self, tiny_cnn, tiny_federated_setup, fast_configs):
        source = make_adaptivefl(tiny_cnn, tiny_federated_setup, fast_configs, backend="streaming")
        source.run_round(0)
        arrays = self.collect(source)
        assert set(arrays) == {"rl/client_ids", "rl/curiosity_columns", "rl/resource_columns"}

        target = make_adaptivefl(tiny_cnn, tiny_federated_setup, fast_configs, backend="streaming")
        target._apply_extra_state(arrays, {})
        for name, table in source.selector.snapshot().items():
            assert np.array_equal(table, target.selector.snapshot()[name]), name

    def test_dense_state_keys_unchanged(self, tiny_cnn, tiny_federated_setup, fast_configs):
        algorithm = make_adaptivefl(tiny_cnn, tiny_federated_setup, fast_configs, backend="dense")
        assert set(self.collect(algorithm)) == {"rl/curiosity_table", "rl/resource_table"}

    def test_backend_mismatch_fails_loudly(self, tiny_cnn, tiny_federated_setup, fast_configs):
        dense = make_adaptivefl(tiny_cnn, tiny_federated_setup, fast_configs, backend="dense")
        streaming = make_adaptivefl(tiny_cnn, tiny_federated_setup, fast_configs, backend="streaming")
        with pytest.raises(ValueError, match="selector_backend"):
            streaming._apply_extra_state(self.collect(dense), {})
        with pytest.raises(ValueError, match="selector_backend"):
            dense._apply_extra_state(self.collect(streaming), {})
