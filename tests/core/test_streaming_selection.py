"""StreamingRLClientSelector: sparse O(selected) RL tables at fleet scale.

Pins the equivalences the class guarantees:

* reward math is operation-for-operation the dense selector's — after an
  identical update history every reward, probability vector and
  list-based ``select()`` draw is **bit-identical**,
* ``select_from_mask`` samples the identical distribution without ever
  materialising the population (memory stays O(selected)),
* checkpoints hold the touched columns only and round-trip bit-exactly.
"""

import numpy as np
import pytest

from repro.core.rl_selection import RLClientSelector, StreamingRLClientSelector

NUM_CLIENTS = 40


@pytest.fixture
def pair(tiny_pool):
    """A dense and a streaming selector fed the same update history."""
    dense = RLClientSelector(tiny_pool, num_clients=NUM_CLIENTS, strategy="rl-cs")
    streaming = StreamingRLClientSelector(tiny_pool, num_clients=NUM_CLIENTS, strategy="rl-cs")
    rng = np.random.default_rng(7)
    configs = list(tiny_pool)
    for _ in range(60):
        sent = configs[int(rng.integers(0, len(configs)))]
        candidates = [cfg for cfg in configs if cfg.num_params <= sent.num_params]
        returned = candidates[int(rng.integers(0, len(candidates)))]
        client = int(rng.integers(0, NUM_CLIENTS // 2))  # touch only half the fleet
        dense.update(sent, returned, client)
        streaming.update(sent, returned, client)
    return dense, streaming


class TestDenseEquivalence:
    def test_snapshot_tables_identical(self, pair):
        dense, streaming = pair
        dense_tables = dense.snapshot()
        streaming_tables = streaming.snapshot()
        assert np.array_equal(dense_tables["curiosity"], streaming_tables["curiosity"])
        assert np.array_equal(dense_tables["resource"], streaming_tables["resource"])

    def test_rewards_bit_identical(self, pair, tiny_pool):
        dense, streaming = pair
        for model in tiny_pool:
            for client in range(NUM_CLIENTS):
                assert dense.combined_reward(model, client) == streaming.combined_reward(model, client)
                assert dense.resource_reward(model, client) == streaming.resource_reward(model, client)
                assert dense.curiosity_reward(model, client) == streaming.curiosity_reward(model, client)

    def test_selection_probabilities_bit_identical(self, pair, tiny_pool):
        dense, streaming = pair
        allowed = list(range(0, NUM_CLIENTS, 3))
        for model in tiny_pool:
            assert np.array_equal(
                dense.selection_probabilities(model, allowed),
                streaming.selection_probabilities(model, allowed),
            )

    def test_list_select_is_a_bit_identical_drop_in(self, pair, tiny_pool):
        dense, streaming = pair
        model = tiny_pool.full_config
        excluded: set[int] = set()
        for seed in range(20):
            a = dense.select(model, np.random.default_rng(seed), excluded=set(excluded))
            b = streaming.select(model, np.random.default_rng(seed), excluded=set(excluded))
            assert a == b
            excluded.add(a)

    @pytest.mark.parametrize("strategy", ["rl-cs", "rl-c", "rl-s", "random"])
    def test_all_strategies_match_dense(self, tiny_pool, strategy):
        dense = RLClientSelector(tiny_pool, num_clients=12, strategy=strategy)
        streaming = StreamingRLClientSelector(tiny_pool, num_clients=12, strategy=strategy)
        full = tiny_pool.full_config
        small = tiny_pool.level_heads()["S"]
        for client in (0, 3, 3, 7):
            dense.update(full, small, client)
            streaming.update(full, small, client)
        for model in tiny_pool:
            probabilities = streaming.selection_probabilities(model, list(range(12)))
            assert np.array_equal(dense.selection_probabilities(model, list(range(12))), probabilities)


class TestMaskSelection:
    def test_matches_probability_weights_over_many_draws(self, pair, tiny_pool):
        _, streaming = pair
        model = tiny_pool.full_config
        mask = np.zeros(NUM_CLIENTS, dtype=bool)
        mask[::2] = True
        allowed = np.flatnonzero(mask).tolist()
        expected = streaming.selection_probabilities(model, allowed)
        counts = np.zeros(NUM_CLIENTS)
        draws = 4000
        rng = np.random.default_rng(0)
        for _ in range(draws):
            client = streaming.select_from_mask(model, rng, mask)
            assert mask[client]
            counts[client] += 1
        observed = counts[np.asarray(allowed)] / draws
        assert np.abs(observed - expected).max() < 0.03

    def test_deterministic_for_fixed_seed_and_mask_not_mutated(self, pair, tiny_pool):
        _, streaming = pair
        model = tiny_pool.full_config
        mask = np.ones(NUM_CLIENTS, dtype=bool)
        before = mask.copy()
        first = [streaming.select_from_mask(model, np.random.default_rng(s), mask) for s in range(30)]
        second = [streaming.select_from_mask(model, np.random.default_rng(s), mask) for s in range(30)]
        assert first == second
        assert np.array_equal(mask, before)

    def test_untouched_tier_reached_and_resolved_by_rank(self, tiny_pool):
        streaming = StreamingRLClientSelector(tiny_pool, num_clients=100, strategy="rl-cs")
        mask = np.ones(100, dtype=bool)
        model = tiny_pool.full_config
        hit = {streaming.select_from_mask(model, np.random.default_rng(s), mask) for s in range(200)}
        assert len(hit) > 20  # the untouched tier spreads over the whole fleet

    def test_empty_mask_rejected(self, pair, tiny_pool):
        _, streaming = pair
        with pytest.raises(ValueError, match="already selected"):
            streaming.select_from_mask(tiny_pool.full_config, np.random.default_rng(0), np.zeros(NUM_CLIENTS, dtype=bool))

    def test_wrong_shape_rejected(self, pair, tiny_pool):
        _, streaming = pair
        with pytest.raises(ValueError, match="shape"):
            streaming.select_from_mask(tiny_pool.full_config, np.random.default_rng(0), np.ones(3, dtype=bool))


class TestMemoryBounds:
    def test_columns_grow_with_selected_not_population(self, tiny_pool):
        streaming = StreamingRLClientSelector(tiny_pool, num_clients=1_000_000, strategy="rl-cs")
        assert streaming.num_touched == 0
        full = tiny_pool.full_config
        for client in (5, 123_456, 999_999, 5):
            streaming.update(full, full, client)
        assert streaming.num_touched == 3

    def test_reads_never_materialise_columns(self, tiny_pool):
        streaming = StreamingRLClientSelector(tiny_pool, num_clients=1_000_000, strategy="rl-cs")
        streaming.combined_reward(tiny_pool.full_config, 777_777)
        mask = np.ones(1_000_000, dtype=bool)
        streaming.select_from_mask(tiny_pool.full_config, np.random.default_rng(0), mask)
        assert streaming.num_touched == 0


class TestCheckpointing:
    def test_state_round_trips_bit_exactly(self, pair, tiny_pool):
        _, streaming = pair
        state = streaming.state_dict()
        assert state["client_ids"].size == streaming.num_touched
        restored = StreamingRLClientSelector(tiny_pool, num_clients=NUM_CLIENTS, strategy="rl-cs")
        restored.load_state_dict(state)
        for name, table in streaming.snapshot().items():
            assert np.array_equal(table, restored.snapshot()[name]), name

    def test_empty_state_round_trips(self, tiny_pool):
        fresh = StreamingRLClientSelector(tiny_pool, num_clients=8)
        state = fresh.state_dict()
        assert state["client_ids"].size == 0
        other = StreamingRLClientSelector(tiny_pool, num_clients=8)
        other.load_state_dict(state)
        assert other.num_touched == 0

    def test_invalid_state_rejected(self, pair, tiny_pool):
        _, streaming = pair
        state = streaming.state_dict()
        with pytest.raises(ValueError, match="missing"):
            streaming.load_state_dict({"client_ids": state["client_ids"]})
        bad = dict(state)
        bad["client_ids"] = np.array([NUM_CLIENTS + 1], dtype=np.int64)
        with pytest.raises(ValueError):
            streaming.load_state_dict(bad)


class TestValidation:
    def test_constructor_rejects_bad_arguments(self, tiny_pool):
        with pytest.raises(ValueError):
            StreamingRLClientSelector(tiny_pool, num_clients=0)
        with pytest.raises(ValueError):
            StreamingRLClientSelector(tiny_pool, num_clients=3, strategy="greedy")
        with pytest.raises(ValueError):
            StreamingRLClientSelector(tiny_pool, num_clients=3, resource_reward_cap=0.0)
        with pytest.raises(ValueError):
            StreamingRLClientSelector(tiny_pool, num_clients=3, cohort_size=0)

    def test_update_validation_matches_dense(self, pair, tiny_pool):
        _, streaming = pair
        small = tiny_pool.level_heads()["S"]
        with pytest.raises(IndexError):
            streaming.update(tiny_pool.full_config, small, NUM_CLIENTS)
        with pytest.raises(ValueError, match="larger"):
            streaming.update(small, tiny_pool.full_config, 0)
