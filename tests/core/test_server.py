"""AdaptiveFL server / training-loop tests (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.config import AdaptiveFLConfig, FederatedConfig
from repro.core.server import AdaptiveFL


def make_adaptivefl(tiny_cnn, tiny_federated_setup, fast_configs, strategy="rl-cs", seed=0):
    config = AdaptiveFLConfig(
        federated=fast_configs["federated"],
        local=fast_configs["local"],
        pool=fast_configs["pool"],
        selection_strategy=strategy,
    )
    setup = tiny_federated_setup
    return AdaptiveFL(
        architecture=tiny_cnn,
        train_dataset=setup["train"],
        partition=setup["partition"],
        test_dataset=setup["test"],
        profiles=setup["profiles"],
        resource_model=setup["resource_model"],
        algorithm_config=config,
        seed=seed,
    )


class TestConfig:
    def test_invalid_strategy(self):
        with pytest.raises(ValueError):
            AdaptiveFLConfig(selection_strategy="rl-x")

    def test_federated_config_validation(self):
        with pytest.raises(ValueError):
            FederatedConfig(num_rounds=0)
        with pytest.raises(ValueError):
            FederatedConfig(clients_per_round=0)


class TestRound:
    def test_round_record_contents(self, tiny_cnn, tiny_federated_setup, fast_configs):
        algorithm = make_adaptivefl(tiny_cnn, tiny_federated_setup, fast_configs)
        record = algorithm.run_round(0)
        expected = fast_configs["federated"].clients_per_round
        assert len(record.dispatched) == expected
        assert len(record.returned) == expected
        assert len(set(record.selected_clients)) == expected
        assert 0.0 <= record.communication_waste <= 1.0
        for sent_name, back_name in zip(record.dispatched, record.returned):
            sent = algorithm.pool.by_name(sent_name)
            back = algorithm.pool.by_name(back_name)
            assert back.num_params <= sent.num_params

    def test_round_updates_global_state_and_tables(self, tiny_cnn, tiny_federated_setup, fast_configs):
        algorithm = make_adaptivefl(tiny_cnn, tiny_federated_setup, fast_configs)
        before = {name: value.copy() for name, value in algorithm.global_state.items()}
        curiosity_before = algorithm.selector.curiosity_table.copy()
        algorithm.run_round(0)
        changed = any(not np.allclose(algorithm.global_state[name], before[name]) for name in before)
        assert changed
        assert algorithm.selector.curiosity_table.sum() > curiosity_before.sum()

    def test_greedy_always_dispatches_full_model(self, tiny_cnn, tiny_federated_setup, fast_configs):
        algorithm = make_adaptivefl(tiny_cnn, tiny_federated_setup, fast_configs, strategy="greedy")
        record = algorithm.run_round(0)
        assert all(name == "L1" for name in record.dispatched)

    def test_greedy_has_higher_waste_than_rl(self, tiny_cnn, tiny_federated_setup, fast_configs):
        """The headline claim of Figure 5a: once the resource table has seen a
        few rounds, the RL strategy wastes less communication than always
        dispatching the full model."""
        greedy = make_adaptivefl(tiny_cnn, tiny_federated_setup, fast_configs, strategy="greedy")
        rl = make_adaptivefl(tiny_cnn, tiny_federated_setup, fast_configs, strategy="rl-s")
        warmup, measured = 6, 8
        greedy_rates = [greedy.run_round(r).communication_waste for r in range(warmup + measured)]
        rl_rates = [rl.run_round(r).communication_waste for r in range(warmup + measured)]
        assert np.mean(greedy_rates[warmup:]) > np.mean(rl_rates[warmup:])


class TestRunLoop:
    def test_history_and_evaluation_cadence(self, tiny_cnn, tiny_federated_setup, fast_configs):
        algorithm = make_adaptivefl(tiny_cnn, tiny_federated_setup, fast_configs)
        history = algorithm.run()
        assert len(history) == fast_configs["federated"].num_rounds
        evaluated = history.evaluated_records()
        assert evaluated, "at least the final round must be evaluated"
        final = evaluated[-1]
        assert set(final.level_accuracies) == {"S", "M", "L"}
        assert final.avg_accuracy == pytest.approx(np.mean(list(final.level_accuracies.values())))

    def test_same_seed_reproduces_history(self, tiny_cnn, tiny_federated_setup, fast_configs):
        a = make_adaptivefl(tiny_cnn, tiny_federated_setup, fast_configs, seed=11)
        b = make_adaptivefl(tiny_cnn, tiny_federated_setup, fast_configs, seed=11)
        history_a = a.run()
        history_b = b.run()
        assert history_a.records[-1].full_accuracy == pytest.approx(history_b.records[-1].full_accuracy)
        assert history_a.records[-1].selected_clients == history_b.records[-1].selected_clients

    def test_different_seeds_differ(self, tiny_cnn, tiny_federated_setup, fast_configs):
        a = make_adaptivefl(tiny_cnn, tiny_federated_setup, fast_configs, seed=1)
        b = make_adaptivefl(tiny_cnn, tiny_federated_setup, fast_configs, seed=2)
        a.run()
        b.run()
        assert (
            a.history.records[0].selected_clients != b.history.records[0].selected_clients
            or a.history.records[0].dispatched != b.history.records[0].dispatched
        )

    def test_clients_per_round_cannot_exceed_clients(self, tiny_cnn, tiny_federated_setup, fast_configs):
        setup = tiny_federated_setup
        bad = FederatedConfig(num_rounds=1, clients_per_round=setup["partition"].num_clients + 1)
        config = AdaptiveFLConfig(federated=bad, local=fast_configs["local"], pool=fast_configs["pool"])
        with pytest.raises(ValueError):
            AdaptiveFL(
                architecture=tiny_cnn,
                train_dataset=setup["train"],
                partition=setup["partition"],
                test_dataset=setup["test"],
                profiles=setup["profiles"],
                resource_model=setup["resource_model"],
                algorithm_config=config,
            )
