"""Fine-grained width-wise pruning tests (paper §3.2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.pruning import (
    build_submodel,
    extract_submodel_state,
    resource_aware_prune,
    slice_state_dict,
    slice_tensor,
)
from repro.nn.models.spec import ParamSpec


class TestSliceTensor:
    def test_out_and_in_axes(self):
        tensor = np.arange(24).reshape(4, 6)
        spec = ParamSpec("w", out_group="a", in_group="b")
        out = slice_tensor(tensor, spec, {"a": 2, "b": 3})
        assert out.shape == (2, 3)
        assert np.allclose(out, tensor[:2, :3])

    def test_in_repeat_for_flattened_features(self):
        tensor = np.arange(4 * 12).reshape(4, 12)
        spec = ParamSpec("w", out_group="fc", in_group="conv", in_repeat=4)
        out = slice_tensor(tensor, spec, {"fc": 4, "conv": 2})
        assert out.shape == (4, 8)
        assert np.allclose(out, tensor[:, :8])

    def test_ungrouped_axes_untouched(self):
        tensor = np.zeros((8, 4, 3, 3))
        spec = ParamSpec("w", out_group="a", in_group=None)
        assert slice_tensor(tensor, spec, {"a": 5}).shape == (5, 4, 3, 3)

    def test_oversized_request_raises(self):
        tensor = np.zeros((4, 4))
        spec = ParamSpec("w", out_group="a", in_group=None)
        with pytest.raises(ValueError):
            slice_tensor(tensor, spec, {"a": 9})


class TestSliceStateDict:
    def test_shapes_match_built_submodel(self, tiny_cnn):
        full_state = tiny_cnn.build(rng=np.random.default_rng(0)).state_dict()
        sizes = tiny_cnn.group_sizes_for(0.5, 1)
        sliced = slice_state_dict(full_state, tiny_cnn, sizes)
        submodel = tiny_cnn.build(sizes, rng=np.random.default_rng(1))
        expected = submodel.state_dict()
        assert set(sliced) == set(expected)
        for name in expected:
            assert sliced[name].shape == expected[name].shape

    def test_sliced_values_are_prefixes_of_global(self, tiny_cnn):
        full_state = tiny_cnn.build(rng=np.random.default_rng(0)).state_dict()
        sizes = tiny_cnn.group_sizes_for(0.4, 1)
        sliced = slice_state_dict(full_state, tiny_cnn, sizes)
        for name, tensor in sliced.items():
            region = tuple(slice(0, extent) for extent in tensor.shape)
            assert np.allclose(tensor, np.asarray(full_state[name])[region])

    def test_missing_key_raises(self, tiny_cnn):
        full_state = tiny_cnn.build(rng=np.random.default_rng(0)).state_dict()
        full_state.pop(next(iter(full_state)))
        with pytest.raises(KeyError):
            slice_state_dict(full_state, tiny_cnn, tiny_cnn.full_group_sizes())

    @settings(max_examples=8, deadline=None)
    @given(ratio=st.sampled_from([0.3, 0.4, 0.5, 0.66, 0.8]), start=st.integers(1, 2))
    def test_pruned_submodel_forward_matches_head_of_levels(self, tiny_cnn, ratio, start):
        """Property: slicing then building always yields a runnable model whose
        parameter count equals the spec-predicted count."""
        full_state = tiny_cnn.build(rng=np.random.default_rng(0)).state_dict()
        sizes = tiny_cnn.group_sizes_for(ratio, start)
        model = tiny_cnn.build(sizes, rng=np.random.default_rng(2))
        model.load_state_dict(slice_state_dict(full_state, tiny_cnn, sizes))
        x = np.random.default_rng(3).normal(size=(2, *tiny_cnn.input_shape))
        assert model(x).shape == (2, tiny_cnn.num_classes)


class TestExtractAndBuild:
    def test_extract_submodel_state(self, tiny_pool):
        global_state = tiny_pool.architecture.build(rng=np.random.default_rng(0)).state_dict()
        config = tiny_pool.by_name("S1")
        state = extract_submodel_state(global_state, tiny_pool, config)
        model = build_submodel(tiny_pool, config, state)
        assert model.state_dict().keys() == state.keys()

    def test_build_submodel_accepts_global_state(self, tiny_pool):
        global_state = tiny_pool.architecture.build(rng=np.random.default_rng(0)).state_dict()
        config = tiny_pool.by_name("M2")
        model = build_submodel(tiny_pool, config, global_state)
        sliced = extract_submodel_state(global_state, tiny_pool, config)
        for name, value in model.state_dict().items():
            assert np.allclose(value, sliced[name])

    def test_full_model_roundtrip_preserves_weights(self, tiny_pool):
        global_state = tiny_pool.architecture.build(rng=np.random.default_rng(0)).state_dict()
        model = build_submodel(tiny_pool, tiny_pool.full_config, global_state)
        for name, value in model.state_dict().items():
            assert np.allclose(value, global_state[name])


class TestResourceAwarePruning:
    def test_keeps_received_model_when_capacity_sufficient(self, tiny_pool):
        received = tiny_pool.by_name("M1")
        chosen = resource_aware_prune(tiny_pool, received, available_capacity=received.num_params + 1)
        assert chosen.name == "M1"

    def test_prunes_to_largest_fitting_model(self, tiny_pool):
        received = tiny_pool.full_config
        s_head = tiny_pool.level_heads()["S"]
        capacity = s_head.num_params + 1
        chosen = resource_aware_prune(tiny_pool, received, capacity)
        assert chosen.num_params <= capacity
        # it must be the *largest* reachable model under the budget
        for cfg in tiny_pool.prunable_to(received):
            if cfg.num_params <= capacity:
                assert cfg.num_params <= chosen.num_params

    def test_falls_back_to_smallest_when_nothing_fits(self, tiny_pool):
        received = tiny_pool.full_config
        chosen = resource_aware_prune(tiny_pool, received, available_capacity=1)
        reachable = tiny_pool.prunable_to(received)
        assert chosen.num_params == min(cfg.num_params for cfg in reachable)

    def test_never_returns_larger_than_received(self, tiny_pool):
        for received in tiny_pool:
            chosen = resource_aware_prune(tiny_pool, received, available_capacity=10**12)
            assert chosen.num_params <= received.num_params
            # with unlimited capacity the device trains exactly what it received
            assert chosen.name == received.name

    def test_invalid_capacity(self, tiny_pool):
        with pytest.raises(ValueError):
            resource_aware_prune(tiny_pool, tiny_pool.full_config, 0)
