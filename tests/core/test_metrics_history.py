"""Metric and history bookkeeping tests."""

import numpy as np
import pytest

from repro.core.history import RoundRecord, TrainingHistory
from repro.core.metrics import communication_waste_rate, evaluate_model, evaluate_state
from repro.data.datasets import Dataset


class TestCommunicationWaste:
    def test_zero_when_nothing_pruned(self):
        assert communication_waste_rate([10, 20], [10, 20]) == pytest.approx(0.0)

    def test_value(self):
        # sent 100, returned 75 -> 25% waste
        assert communication_waste_rate([60, 40], [45, 30]) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            communication_waste_rate([1, 2], [1])
        with pytest.raises(ValueError):
            communication_waste_rate([], [])


class TestEvaluate:
    def test_perfect_model_scores_one(self, tiny_cnn):
        """A model whose logits are forced to the right class must score 1.0."""
        model = tiny_cnn.build(rng=np.random.default_rng(0))
        images = np.random.default_rng(1).normal(size=(20, *tiny_cnn.input_shape))
        labels = np.random.default_rng(2).integers(0, tiny_cnn.num_classes, size=20)
        dataset = Dataset(images, labels, tiny_cnn.num_classes)
        accuracy, loss = evaluate_model(model, dataset, batch_size=8)
        assert 0.0 <= accuracy <= 1.0
        assert loss > 0.0

    def test_evaluate_state_accepts_full_and_sliced_states(self, tiny_cnn, tiny_pool):
        global_state = tiny_cnn.build(rng=np.random.default_rng(0)).state_dict()
        images = np.random.default_rng(1).normal(size=(12, *tiny_cnn.input_shape))
        labels = np.random.default_rng(2).integers(0, tiny_cnn.num_classes, size=12)
        dataset = Dataset(images, labels, tiny_cnn.num_classes)
        sizes = tiny_pool.group_sizes(tiny_pool.by_name("S1"))

        from repro.core.pruning import slice_state_dict

        acc_from_full, _ = evaluate_state(tiny_cnn, sizes, global_state, dataset, batch_size=6)
        acc_from_sliced, _ = evaluate_state(
            tiny_cnn, sizes, slice_state_dict(global_state, tiny_cnn, sizes), dataset, batch_size=6
        )
        assert acc_from_full == pytest.approx(acc_from_sliced)

    def test_empty_dataset_rejected(self, tiny_cnn):
        model = tiny_cnn.build()
        empty = Dataset(np.zeros((0, *tiny_cnn.input_shape)), np.zeros(0, dtype=int), tiny_cnn.num_classes)
        with pytest.raises(ValueError):
            evaluate_model(model, empty)


class TestTrainingHistory:
    def build_history(self):
        history = TrainingHistory("demo")
        for round_index, accuracy in enumerate([0.2, 0.4, 0.35]):
            record = RoundRecord(
                round_index=round_index,
                full_accuracy=accuracy,
                avg_accuracy=accuracy - 0.05,
                level_accuracies={"S": accuracy - 0.1, "M": accuracy, "L": accuracy},
                communication_waste=0.1 * (round_index + 1),
                wall_clock_seconds=10.0,
            )
            history.append(record)
        return history

    def test_accuracy_curves(self):
        history = self.build_history()
        rounds, values = history.accuracy_curve("full")
        assert rounds == [0, 1, 2]
        assert values == [0.2, 0.4, 0.35]

    def test_final_accuracy_is_best(self):
        assert self.build_history().final_accuracy("full") == pytest.approx(0.4)

    def test_time_curve_accumulates(self):
        seconds, values = self.build_history().time_curve("full")
        assert seconds == [10.0, 20.0, 30.0]
        assert len(values) == 3

    def test_mean_waste(self):
        assert self.build_history().mean_communication_waste() == pytest.approx(0.2)

    def test_monotone_round_indices_enforced(self):
        history = self.build_history()
        with pytest.raises(ValueError):
            history.append(RoundRecord(round_index=1))

    def test_unevaluated_rounds_excluded_from_curves(self):
        history = TrainingHistory("demo")
        history.append(RoundRecord(round_index=0))
        history.append(RoundRecord(round_index=1, full_accuracy=0.5, avg_accuracy=0.4))
        rounds, values = history.accuracy_curve("full")
        assert rounds == [1]

    def test_empty_history_errors(self):
        history = TrainingHistory("demo")
        with pytest.raises(ValueError):
            history.final_accuracy()
        with pytest.raises(ValueError):
            history.mean_communication_waste()

    def test_to_dict_roundtrip(self):
        payload = self.build_history().to_dict()
        assert payload["algorithm"] == "demo"
        assert len(payload["rounds"]) == 3
        assert payload["rounds"][1]["full_accuracy"] == 0.4

    def test_from_dict_reconstructs_records(self):
        history = self.build_history()
        rebuilt = TrainingHistory.from_dict(history.to_dict())
        assert rebuilt.algorithm == history.algorithm
        assert rebuilt.records == history.records

    def test_from_dict_rejects_unknown_keys(self):
        payload = self.build_history().to_dict()
        payload["extra"] = 1
        with pytest.raises(ValueError, match="extra"):
            TrainingHistory.from_dict(payload)
        bad_round = self.build_history().to_dict()
        bad_round["rounds"][0]["mystery"] = 2
        with pytest.raises(ValueError, match="mystery"):
            TrainingHistory.from_dict(bad_round)

    def test_record_roundtrip_preserves_fleet_fields(self):
        record = RoundRecord(
            round_index=4,
            dispatched=["L1", "S2"],
            returned=["M1", "S2"],
            selected_clients=[3, 1],
            arrival_seconds=[12.5, None],
            dropped_clients=[1],
            deadline_seconds=20.0,
            bytes_down=4096,
            bytes_up=2048,
            wall_clock_seconds=20.0,
        )
        assert RoundRecord.from_dict(record.to_dict()) == record
        assert record.aggregated_clients == [3]

    def test_record_round_key_aliases_round_index(self):
        assert RoundRecord.from_dict({"round": 2}).round_index == 2
        assert RoundRecord.from_dict({"round_index": 2}).round_index == 2
        with pytest.raises(ValueError):
            RoundRecord.from_dict({"round": 2, "round_index": 2})


class TestElapsedTimeAccounting:
    def test_elapsed_seconds_sums_all_rounds(self):
        history = TrainingHistory("demo")
        history.append(RoundRecord(round_index=0, wall_clock_seconds=5.0))
        history.append(RoundRecord(round_index=1))  # untimed rounds count as zero
        history.append(RoundRecord(round_index=2, wall_clock_seconds=2.5))
        assert history.elapsed_seconds() == 7.5

    def test_elapsed_seconds_without_clock_is_zero(self):
        history = TrainingHistory("demo")
        history.append(RoundRecord(round_index=0))
        assert history.elapsed_seconds() == 0.0

    def test_time_curve_skips_unevaluated_but_accumulates_their_time(self):
        history = TrainingHistory("demo")
        history.append(RoundRecord(round_index=0, wall_clock_seconds=4.0))
        history.append(RoundRecord(round_index=1, wall_clock_seconds=6.0, full_accuracy=0.5, avg_accuracy=0.4))
        seconds, values = history.time_curve("full")
        assert seconds == [10.0]  # the unevaluated round's seconds still elapse
        assert values == [0.5]

    def test_total_dropped_counts_slots(self):
        history = TrainingHistory("demo")
        history.append(RoundRecord(round_index=0, dropped_clients=[1, 2]))
        history.append(RoundRecord(round_index=1, dropped_clients=[7]))
        assert history.total_dropped() == 3
