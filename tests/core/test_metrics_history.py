"""Metric and history bookkeeping tests."""

import numpy as np
import pytest

from repro.core.history import RoundRecord, TrainingHistory
from repro.core.metrics import communication_waste_rate, evaluate_model, evaluate_state
from repro.data.datasets import Dataset


class TestCommunicationWaste:
    def test_zero_when_nothing_pruned(self):
        assert communication_waste_rate([10, 20], [10, 20]) == pytest.approx(0.0)

    def test_value(self):
        # sent 100, returned 75 -> 25% waste
        assert communication_waste_rate([60, 40], [45, 30]) == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ValueError):
            communication_waste_rate([1, 2], [1])
        with pytest.raises(ValueError):
            communication_waste_rate([], [])


class TestEvaluate:
    def test_perfect_model_scores_one(self, tiny_cnn):
        """A model whose logits are forced to the right class must score 1.0."""
        model = tiny_cnn.build(rng=np.random.default_rng(0))
        images = np.random.default_rng(1).normal(size=(20, *tiny_cnn.input_shape))
        labels = np.random.default_rng(2).integers(0, tiny_cnn.num_classes, size=20)
        dataset = Dataset(images, labels, tiny_cnn.num_classes)
        accuracy, loss = evaluate_model(model, dataset, batch_size=8)
        assert 0.0 <= accuracy <= 1.0
        assert loss > 0.0

    def test_evaluate_state_accepts_full_and_sliced_states(self, tiny_cnn, tiny_pool):
        global_state = tiny_cnn.build(rng=np.random.default_rng(0)).state_dict()
        images = np.random.default_rng(1).normal(size=(12, *tiny_cnn.input_shape))
        labels = np.random.default_rng(2).integers(0, tiny_cnn.num_classes, size=12)
        dataset = Dataset(images, labels, tiny_cnn.num_classes)
        sizes = tiny_pool.group_sizes(tiny_pool.by_name("S1"))

        from repro.core.pruning import slice_state_dict

        acc_from_full, _ = evaluate_state(tiny_cnn, sizes, global_state, dataset, batch_size=6)
        acc_from_sliced, _ = evaluate_state(
            tiny_cnn, sizes, slice_state_dict(global_state, tiny_cnn, sizes), dataset, batch_size=6
        )
        assert acc_from_full == pytest.approx(acc_from_sliced)

    def test_empty_dataset_rejected(self, tiny_cnn):
        model = tiny_cnn.build()
        empty = Dataset(np.zeros((0, *tiny_cnn.input_shape)), np.zeros(0, dtype=int), tiny_cnn.num_classes)
        with pytest.raises(ValueError):
            evaluate_model(model, empty)


class TestTrainingHistory:
    def build_history(self):
        history = TrainingHistory("demo")
        for round_index, accuracy in enumerate([0.2, 0.4, 0.35]):
            record = RoundRecord(
                round_index=round_index,
                full_accuracy=accuracy,
                avg_accuracy=accuracy - 0.05,
                level_accuracies={"S": accuracy - 0.1, "M": accuracy, "L": accuracy},
                communication_waste=0.1 * (round_index + 1),
                wall_clock_seconds=10.0,
            )
            history.append(record)
        return history

    def test_accuracy_curves(self):
        history = self.build_history()
        rounds, values = history.accuracy_curve("full")
        assert rounds == [0, 1, 2]
        assert values == [0.2, 0.4, 0.35]

    def test_final_accuracy_is_best(self):
        assert self.build_history().final_accuracy("full") == pytest.approx(0.4)

    def test_time_curve_accumulates(self):
        seconds, values = self.build_history().time_curve("full")
        assert seconds == [10.0, 20.0, 30.0]
        assert len(values) == 3

    def test_mean_waste(self):
        assert self.build_history().mean_communication_waste() == pytest.approx(0.2)

    def test_monotone_round_indices_enforced(self):
        history = self.build_history()
        with pytest.raises(ValueError):
            history.append(RoundRecord(round_index=1))

    def test_unevaluated_rounds_excluded_from_curves(self):
        history = TrainingHistory("demo")
        history.append(RoundRecord(round_index=0))
        history.append(RoundRecord(round_index=1, full_accuracy=0.5, avg_accuracy=0.4))
        rounds, values = history.accuracy_curve("full")
        assert rounds == [1]

    def test_empty_history_errors(self):
        history = TrainingHistory("demo")
        with pytest.raises(ValueError):
            history.final_accuracy()
        with pytest.raises(ValueError):
            history.mean_communication_waste()

    def test_to_dict_roundtrip(self):
        payload = self.build_history().to_dict()
        assert payload["algorithm"] == "demo"
        assert len(payload["rounds"]) == 3
        assert payload["rounds"][1]["full_accuracy"] == 0.4
