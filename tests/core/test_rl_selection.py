"""RL-based client selection tests (paper §3.3 / Algorithm 1 lines 12-26)."""

import numpy as np
import pytest

from repro.core.rl_selection import RLClientSelector


@pytest.fixture
def selector(tiny_pool):
    return RLClientSelector(tiny_pool, num_clients=6, strategy="rl-cs")


class TestInitialisation:
    def test_tables_start_at_one(self, selector, tiny_pool):
        assert selector.curiosity_table.shape == (3, 6)
        assert selector.resource_table.shape == (len(tiny_pool), 6)
        assert np.allclose(selector.curiosity_table, 1.0)
        assert np.allclose(selector.resource_table, 1.0)

    def test_invalid_arguments(self, tiny_pool):
        with pytest.raises(ValueError):
            RLClientSelector(tiny_pool, num_clients=0)
        with pytest.raises(ValueError):
            RLClientSelector(tiny_pool, num_clients=3, strategy="greedy")
        with pytest.raises(ValueError):
            RLClientSelector(tiny_pool, num_clients=3, resource_reward_cap=0.0)


class TestRewards:
    def test_initial_rewards_are_uniform_across_clients(self, selector, tiny_pool):
        model = tiny_pool.by_name("M1")
        rewards = [selector.combined_reward(model, c) for c in range(6)]
        assert max(rewards) == pytest.approx(min(rewards))

    def test_curiosity_reward_decreases_with_selection_count(self, selector, tiny_pool):
        model = tiny_pool.by_name("S1")
        before = selector.curiosity_reward(model, 0)
        selector.curiosity_table[tiny_pool.level_index("S"), 0] = 9.0
        after = selector.curiosity_reward(model, 0)
        assert after == pytest.approx(1.0 / 3.0)
        assert after < before

    def test_resource_reward_grows_with_success(self, selector, tiny_pool):
        model = tiny_pool.by_name("L1")
        before = selector.resource_reward(model, 1)
        # client 1 repeatedly succeeds at training L1 unchanged
        for _ in range(5):
            selector.update(tiny_pool.full_config, tiny_pool.full_config, 1)
        after = selector.resource_reward(model, 1)
        assert after > before

    def test_resource_reward_cap_limits_combined_reward(self, tiny_pool):
        selector = RLClientSelector(tiny_pool, num_clients=3, strategy="rl-cs", resource_reward_cap=0.5)
        # inflate client 0's success scores to push R_s well beyond the cap;
        # the S level sums over all three of its ranks so its reward can
        # exceed the 0.5 cap once the whole column is saturated.
        selector.resource_table[:, 0] = 1000.0
        model = tiny_pool.level_heads()["S"]
        assert selector.resource_reward(model, 0) > 0.5
        combined = selector.combined_reward(model, 0)
        assert combined <= 0.5 * selector.curiosity_reward(model, 0) + 1e-12

    def test_probabilities_normalised(self, selector, tiny_pool):
        probabilities = selector.selection_probabilities(tiny_pool.by_name("S2"), list(range(6)))
        assert probabilities.sum() == pytest.approx(1.0)
        assert (probabilities >= 0).all()


class TestTableUpdates:
    def test_curiosity_counts_both_levels(self, selector, tiny_pool):
        sent = tiny_pool.by_name("L1")
        returned = tiny_pool.by_name("S1")
        selector.update(sent, returned, client=2)
        assert selector.curiosity_table[tiny_pool.level_index("L"), 2] == 2.0
        assert selector.curiosity_table[tiny_pool.level_index("S"), 2] == 2.0
        assert selector.curiosity_table[tiny_pool.level_index("M"), 2] == 1.0

    def test_unpruned_return_increments_larger_models(self, selector, tiny_pool):
        sent = tiny_pool.by_name("M2")
        selector.update(sent, sent, client=0)
        column = selector.resource_table[:, 0]
        p = tiny_pool.config.models_per_level
        for rank in range(len(tiny_pool)):
            if rank < sent.rank:
                assert column[rank] == 1.0
            elif rank == len(tiny_pool) - 1:
                # line 18: the full model additionally gains p-1
                assert column[rank] == 1.0 + 1.0 + (p - 1)
            else:
                assert column[rank] == 2.0

    def test_pruned_return_rewards_returned_size_and_penalises_larger(self, selector, tiny_pool):
        sent = tiny_pool.full_config
        returned = tiny_pool.by_name("S1")
        selector.update(sent, returned, client=3)
        column = selector.resource_table[:, 3]
        p = tiny_pool.config.models_per_level
        # returned rank gains +p then the penalty loop subtracts 0
        assert column[returned.rank] == 1.0 + p
        # strictly larger ranks are progressively penalised (floored at 0)
        penalty = 1.0
        for rank in range(returned.rank + 1, len(tiny_pool)):
            assert column[rank] == max(1.0 - penalty, 0.0)
            penalty += 1.0

    def test_larger_return_than_sent_rejected(self, selector, tiny_pool):
        with pytest.raises(ValueError):
            selector.update(tiny_pool.by_name("S1"), tiny_pool.full_config, 0)

    def test_updates_shift_selection_towards_capable_clients(self, tiny_pool):
        """After client 0 repeatedly proves it can train L1 while client 1 keeps
        pruning to S-level, L1 dispatches should prefer client 0."""
        selector = RLClientSelector(tiny_pool, num_clients=2, strategy="rl-s")
        for _ in range(10):
            selector.update(tiny_pool.full_config, tiny_pool.full_config, 0)
            selector.update(tiny_pool.full_config, tiny_pool.by_name("S3"), 1)
        reward_capable = selector.resource_reward(tiny_pool.full_config, 0)
        reward_weak = selector.resource_reward(tiny_pool.full_config, 1)
        assert reward_capable > reward_weak


class TestSelection:
    def test_select_respects_exclusion(self, selector, tiny_pool):
        rng = np.random.default_rng(0)
        excluded = {0, 1, 2, 3, 4}
        choice = selector.select(tiny_pool.by_name("S1"), rng, excluded=excluded)
        assert choice == 5

    def test_select_all_excluded_raises(self, selector, tiny_pool):
        with pytest.raises(ValueError):
            selector.select(tiny_pool.by_name("S1"), np.random.default_rng(0), excluded=set(range(6)))

    def test_random_strategy_is_uniform(self, tiny_pool):
        selector = RLClientSelector(tiny_pool, num_clients=4, strategy="random")
        probabilities = selector.selection_probabilities(tiny_pool.by_name("M1"), [0, 1, 2, 3])
        assert np.allclose(probabilities, 0.25)

    def test_strategies_differ_after_updates(self, tiny_pool):
        kwargs = dict(num_clients=3)
        cs = RLClientSelector(tiny_pool, strategy="rl-cs", **kwargs)
        c_only = RLClientSelector(tiny_pool, strategy="rl-c", **kwargs)
        s_only = RLClientSelector(tiny_pool, strategy="rl-s", **kwargs)
        for selector_instance in (cs, c_only, s_only):
            for _ in range(4):
                selector_instance.update(tiny_pool.full_config, tiny_pool.by_name("S2"), 0)
                selector_instance.update(tiny_pool.full_config, tiny_pool.full_config, 1)
        model = tiny_pool.full_config
        p_cs = cs.selection_probabilities(model, [0, 1, 2])
        p_c = c_only.selection_probabilities(model, [0, 1, 2])
        p_s = s_only.selection_probabilities(model, [0, 1, 2])
        assert not np.allclose(p_cs, p_c)
        assert not np.allclose(p_c, p_s)

    def test_snapshot_returns_copies(self, selector):
        snap = selector.snapshot()
        snap["curiosity"] += 100
        assert np.allclose(selector.curiosity_table, 1.0)
