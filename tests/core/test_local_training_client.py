"""Local-training and simulated-client tests."""

import numpy as np
import pytest

from repro.core.client import SimulatedClient
from repro.core.config import LocalTrainingConfig
from repro.core.local_training import train_local_model
from repro.core.pruning import extract_submodel_state
from repro.devices.profiles import DEFAULT_DEVICE_CLASSES, DeviceProfile


@pytest.fixture
def client_dataset(tiny_task):
    train, _ = tiny_task
    return train.subset(np.arange(80))


class TestTrainLocalModel:
    def test_returns_trained_state_with_expected_shapes(self, tiny_cnn, client_dataset):
        initial = tiny_cnn.build(rng=np.random.default_rng(0)).state_dict()
        config = LocalTrainingConfig(local_epochs=1, batch_size=16, max_batches_per_epoch=3)
        result = train_local_model(
            tiny_cnn, tiny_cnn.full_group_sizes(), initial, client_dataset, config, np.random.default_rng(1)
        )
        assert result.num_samples == len(client_dataset)
        assert result.num_steps == 3
        assert set(result.state) == set(initial)
        assert all(result.state[name].shape == initial[name].shape for name in initial)

    def test_training_changes_parameters(self, tiny_cnn, client_dataset):
        initial = tiny_cnn.build(rng=np.random.default_rng(0)).state_dict()
        config = LocalTrainingConfig(local_epochs=1, batch_size=16, max_batches_per_epoch=2)
        result = train_local_model(
            tiny_cnn, tiny_cnn.full_group_sizes(), initial, client_dataset, config, np.random.default_rng(1)
        )
        changed = any(
            not np.allclose(result.state[name], initial[name])
            for name in initial
            if not name.endswith(("running_mean", "running_var"))
        )
        assert changed

    def test_loss_decreases_over_epochs(self, tiny_cnn, client_dataset):
        initial = tiny_cnn.build(rng=np.random.default_rng(0)).state_dict()
        short = LocalTrainingConfig(local_epochs=1, batch_size=20)
        long = LocalTrainingConfig(local_epochs=4, batch_size=20)
        loss_short = train_local_model(
            tiny_cnn, tiny_cnn.full_group_sizes(), initial, client_dataset, short, np.random.default_rng(1)
        ).mean_loss
        loss_long = train_local_model(
            tiny_cnn, tiny_cnn.full_group_sizes(), initial, client_dataset, long, np.random.default_rng(1)
        ).mean_loss
        assert loss_long < loss_short

    def test_empty_dataset_rejected(self, tiny_cnn, client_dataset):
        empty = client_dataset.subset(np.array([], dtype=int))
        with pytest.raises(ValueError):
            train_local_model(
                tiny_cnn,
                tiny_cnn.full_group_sizes(),
                tiny_cnn.build().state_dict(),
                empty,
                LocalTrainingConfig(),
                np.random.default_rng(0),
            )

    def test_local_config_validation(self):
        with pytest.raises(ValueError):
            LocalTrainingConfig(local_epochs=0)
        with pytest.raises(ValueError):
            LocalTrainingConfig(batch_size=0)
        with pytest.raises(ValueError):
            LocalTrainingConfig(learning_rate=-1)
        with pytest.raises(ValueError):
            LocalTrainingConfig(momentum=1.0)


class TestSimulatedClient:
    def make_client(self, dataset, class_name="strong"):
        profile = DeviceProfile(client_id=0, device_class=DEFAULT_DEVICE_CLASSES[class_name])
        config = LocalTrainingConfig(local_epochs=1, batch_size=16, max_batches_per_epoch=2)
        return SimulatedClient(0, dataset, profile, config)

    def test_no_pruning_when_capacity_sufficient(self, tiny_pool, client_dataset):
        client = self.make_client(client_dataset)
        dispatched = tiny_pool.by_name("M1")
        state = extract_submodel_state(
            tiny_pool.architecture.build(rng=np.random.default_rng(0)).state_dict(), tiny_pool, dispatched
        )
        config, adapted = client.adapt_model(tiny_pool, dispatched, state, available_capacity=dispatched.num_params * 2)
        assert config.name == "M1"
        assert adapted is state

    def test_adaptive_pruning_when_capacity_limited(self, tiny_pool, client_dataset):
        client = self.make_client(client_dataset, "weak")
        dispatched = tiny_pool.full_config
        state = extract_submodel_state(
            tiny_pool.architecture.build(rng=np.random.default_rng(0)).state_dict(), tiny_pool, dispatched
        )
        s_head = tiny_pool.level_heads()["S"]
        config, adapted = client.adapt_model(tiny_pool, dispatched, state, available_capacity=s_head.num_params + 1)
        assert config.num_params <= s_head.num_params + 1
        # adapted weights are prefix slices of what was dispatched
        for name, tensor in adapted.items():
            region = tuple(slice(0, extent) for extent in tensor.shape)
            assert np.allclose(tensor, np.asarray(state[name])[region])

    def test_local_round_reports_pruning(self, tiny_pool, client_dataset):
        client = self.make_client(client_dataset, "weak")
        dispatched = tiny_pool.full_config
        global_state = tiny_pool.architecture.build(rng=np.random.default_rng(0)).state_dict()
        state = extract_submodel_state(global_state, tiny_pool, dispatched)
        result = client.local_round(
            tiny_pool, dispatched, state, available_capacity=tiny_pool.level_heads()["S"].num_params, rng=np.random.default_rng(0)
        )
        assert result.locally_pruned
        assert result.returned.num_params < result.dispatched.num_params
        assert result.num_samples == len(client_dataset)

    def test_empty_client_rejected(self, tiny_pool, client_dataset):
        empty = client_dataset.subset(np.array([], dtype=int))
        with pytest.raises(ValueError):
            self.make_client(empty)
