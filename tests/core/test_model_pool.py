"""Model-pool construction tests."""

import pytest

from repro.core.config import ModelPoolConfig
from repro.core.model_pool import ModelPool


class TestModelPoolConfig:
    def test_defaults_match_paper(self):
        config = ModelPoolConfig()
        assert config.models_per_level == 3
        assert config.level_width_ratios == {"L": 1.0, "M": 0.66, "S": 0.40}
        assert config.start_layers == (8, 6, 4)

    def test_validation(self):
        with pytest.raises(ValueError):
            ModelPoolConfig(models_per_level=0)
        with pytest.raises(ValueError):
            ModelPoolConfig(level_width_ratios={"L": 0.9, "M": 0.66, "S": 0.4})
        with pytest.raises(ValueError):
            ModelPoolConfig(level_width_ratios={"L": 1.0, "M": 0.3, "S": 0.4})
        with pytest.raises(ValueError):
            ModelPoolConfig(start_layers=(4, 6, 8))
        with pytest.raises(ValueError):
            ModelPoolConfig(start_layers=(8, 6, 2), min_start_layer=4)


class TestModelPool:
    def test_contains_2p_plus_1_entries(self, tiny_pool):
        assert len(tiny_pool) == 7

    def test_sorted_by_size_with_full_model_last(self, tiny_pool):
        sizes = [cfg.num_params for cfg in tiny_pool]
        assert sizes == sorted(sizes)
        assert tiny_pool.full_config.name == "L1"
        assert tiny_pool.full_config.num_params == tiny_pool.architecture.parameter_count()

    def test_ranks_are_consecutive(self, tiny_pool):
        assert [cfg.rank for cfg in tiny_pool] == list(range(7))

    def test_level_heads(self, tiny_pool):
        heads = tiny_pool.level_heads()
        assert set(heads) == {"S", "M", "L"}
        assert heads["S"].num_params < heads["M"].num_params < heads["L"].num_params

    def test_by_name_and_rank(self, tiny_pool):
        cfg = tiny_pool.by_name("M1")
        assert tiny_pool.by_rank(cfg.rank).name == "M1"
        with pytest.raises(KeyError):
            tiny_pool.by_name("XL9")

    def test_pool_spans_a_wide_size_range(self, tiny_pool):
        """The pool must offer meaningfully smaller options than the full model
        so weak devices (30% capacity) always have something to train; the
        paper-exact 0.25x/0.5x level fractions are asserted on VGG16 in
        tests/nn/test_models.py::TestVGGTable1."""
        full = tiny_pool.full_config.num_params
        smallest = tiny_pool.by_rank(0)
        assert smallest.num_params <= 0.45 * full
        heads = tiny_pool.level_heads()
        assert heads["S"].num_params <= heads["M"].num_params <= heads["L"].num_params

    def test_fits_within_is_reflexive_and_respects_levels(self, tiny_pool):
        for cfg in tiny_pool:
            assert tiny_pool.fits_within(cfg, cfg)
            assert tiny_pool.fits_within(cfg, tiny_pool.full_config)

    def test_prunable_to_full_model_is_everything(self, tiny_pool):
        reachable = tiny_pool.prunable_to(tiny_pool.full_config)
        assert len(reachable) == len(tiny_pool)

    def test_start_layer_must_be_shallower_than_model(self, tiny_cnn):
        with pytest.raises(ValueError):
            ModelPool(tiny_cnn, ModelPoolConfig(models_per_level=1, start_layers=(5,), min_start_layer=1))

    def test_group_sizes_full_for_l1(self, tiny_pool):
        sizes = tiny_pool.group_sizes(tiny_pool.full_config)
        assert sizes == tiny_pool.architecture.full_group_sizes()
