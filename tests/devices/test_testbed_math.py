"""Direct coverage of the test-bed round-time arithmetic (§4.5 clock).

The formulas here are load-bearing twice over: the legacy testbed path
uses them directly and the ``paper_testbed`` fleet scenario promises
bit-identical reproductions of them, so each term is pinned explicitly.
"""

import numpy as np
import pytest

from repro.devices.testbed import TESTBED_DEVICE_SPECS, TestbedSimulator
from repro.devices.testbed import TestbedDeviceSpec as DeviceSpec  # alias: not a test class


class TestDeviceSpecs:
    def test_paper_mix(self):
        counts = {spec.name: spec.count for spec in TESTBED_DEVICE_SPECS}
        assert counts == {"raspberry_pi_4b": 4, "jetson_nano": 10, "jetson_xavier_agx": 3}
        assert sum(counts.values()) == 17

    def test_invalid_spec_values_rejected(self):
        with pytest.raises(ValueError):
            DeviceSpec("x", "weak", flops_per_second=0, bandwidth_mbps=1, memory_gb=1, count=1)
        with pytest.raises(ValueError):
            DeviceSpec("x", "weak", flops_per_second=1, bandwidth_mbps=1, memory_gb=1, count=0)


class TestRoundTimeMath:
    def setup_method(self):
        self.testbed = TestbedSimulator()

    def test_communication_time_formula(self):
        # client 0 is a Raspberry Pi: 40 Mbps.  1000 down + 500 up float32
        # parameters = 6000 bytes = 48000 bits -> 48000 / 40e6 seconds.
        expected = (1000 + 500) * 4 * 8 / (40.0 * 1e6)
        assert self.testbed.communication_time(0, params_down=1000, params_up=500) == expected

    def test_training_time_formula(self):
        # client 0: 6e8 flops/s; backward pass multiplier 3.
        expected = 3.0 * 2_000_000 * 30 * 2 / 6.0e8
        assert self.testbed.training_time(0, flops_per_sample=2_000_000, num_samples=30, local_epochs=2) == expected

    def test_client_round_time_is_comm_plus_compute(self):
        comm = self.testbed.communication_time(5, 1000, 1000)
        train = self.testbed.training_time(5, 100_000, 20, 1)
        total = self.testbed.client_round_time(
            5, params_down=1000, params_up=1000, flops_per_sample=100_000, num_samples=20, local_epochs=1
        )
        assert total == comm + train

    def test_round_time_is_slowest_participant(self):
        assert self.testbed.round_time([1.5, 9.25, 3.0]) == 9.25
        assert self.testbed.round_time([]) == 0.0

    def test_stronger_devices_are_faster(self):
        # clients are laid out pi(0-3), nano(4-13), agx(14-16) before shuffling
        args = dict(params_down=10_000, params_up=10_000, flops_per_sample=1_000_000, num_samples=50, local_epochs=1)
        pi = self.testbed.client_round_time(0, **args)
        nano = self.testbed.client_round_time(4, **args)
        agx = self.testbed.client_round_time(16, **args)
        assert pi > nano > agx

    def test_profile_permutation_remaps_timing(self):
        """After build_profiles(rng) timing must follow the shuffled spec order."""
        testbed = TestbedSimulator()
        rng = np.random.default_rng(3)
        testbed.build_profiles(rng)
        order = np.random.default_rng(3).permutation(testbed.num_devices)
        args = dict(params_down=1000, params_up=1000, flops_per_sample=100_000, num_samples=10, local_epochs=1)
        for client_id in range(testbed.num_devices):
            spec = testbed.device_spec(int(order[client_id]))
            expected = (1000 + 1000) * 4 * 8 / (spec.bandwidth_mbps * 1e6) + 3.0 * 100_000 * 10 * 1 / spec.flops_per_second
            assert testbed.client_round_time(client_id, **args) == expected

    def test_profiles_expose_the_device_mix(self):
        profiles = self.testbed.build_profiles()
        names = [profile.class_name for profile in profiles]
        assert names.count("weak") == 4
        assert names.count("medium") == 10
        assert names.count("strong") == 3
        # compute speeds are normalised to the strongest device
        assert profiles[-1].device_class.compute_speed == 1.0
