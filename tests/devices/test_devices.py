"""Device profile, resource-model and test-bed tests."""

import numpy as np
import pytest

from repro.devices.profiles import (
    DEFAULT_DEVICE_CLASSES,
    DeviceClass,
    assign_device_classes,
    build_device_profiles,
    parse_proportion,
)
from repro.devices.resources import ResourceModel, StaticResourceModel
from repro.devices.testbed import TESTBED_DEVICE_SPECS, TestbedSimulator


class TestProportions:
    def test_parse_string(self):
        assert parse_proportion("4:3:3") == pytest.approx((0.4, 0.3, 0.3))
        assert parse_proportion("1:1:8") == pytest.approx((0.1, 0.1, 0.8))

    def test_parse_tuple(self):
        assert parse_proportion((2, 1, 1)) == pytest.approx((0.5, 0.25, 0.25))

    def test_invalid(self):
        with pytest.raises(ValueError):
            parse_proportion("1:2")
        with pytest.raises(ValueError):
            parse_proportion("0:0:0")


class TestAssignment:
    @pytest.mark.parametrize("proportion, expected", [("4:3:3", (40, 30, 30)), ("8:1:1", (80, 10, 10)), ("1:1:8", (10, 10, 80))])
    def test_counts_match_proportion(self, proportion, expected):
        assigned = assign_device_classes(100, proportion)
        counts = (
            sum(1 for c in assigned if c.name == "weak"),
            sum(1 for c in assigned if c.name == "medium"),
            sum(1 for c in assigned if c.name == "strong"),
        )
        assert counts == expected

    def test_rounding_preserves_total(self):
        assigned = assign_device_classes(7, "4:3:3")
        assert len(assigned) == 7

    def test_shuffle_controlled_by_rng(self):
        ordered = assign_device_classes(10, "4:3:3", rng=None)
        shuffled = assign_device_classes(10, "4:3:3", rng=np.random.default_rng(0))
        assert sorted(c.name for c in ordered) == sorted(c.name for c in shuffled)
        assert [c.name for c in ordered] != [c.name for c in shuffled]

    def test_build_profiles_ids(self):
        profiles = build_device_profiles(5, "4:3:3", np.random.default_rng(0))
        assert [p.client_id for p in profiles] == list(range(5))

    def test_capacity_ordering(self):
        weak = DEFAULT_DEVICE_CLASSES["weak"]
        medium = DEFAULT_DEVICE_CLASSES["medium"]
        strong = DEFAULT_DEVICE_CLASSES["strong"]
        assert weak.capacity_fraction < medium.capacity_fraction < strong.capacity_fraction

    def test_device_class_validation(self):
        with pytest.raises(ValueError):
            DeviceClass("bad", capacity_fraction=0.0)


class TestResourceModel:
    @pytest.fixture
    def model(self):
        profiles = build_device_profiles(6, "4:3:3", np.random.default_rng(0))
        return ResourceModel(profiles, full_model_params=1_000_000, uncertainty=0.2, seed=5)

    def test_capacity_is_deterministic(self, model):
        a = model.available_capacity(2, 7)
        b = model.available_capacity(2, 7)
        assert a == b

    def test_capacity_fluctuates_across_rounds(self, model):
        values = {model.available_capacity(0, r) for r in range(20)}
        assert len(values) > 1

    def test_capacity_bounded(self, model):
        for client in range(model.num_clients):
            nominal = model.nominal_capacity(client)
            for round_index in range(10):
                cap = model.available_capacity(client, round_index)
                assert 0.5 * nominal <= cap <= 1.1 * nominal

    def test_static_model_has_no_fluctuation(self):
        profiles = build_device_profiles(4, "4:3:3", np.random.default_rng(0))
        model = StaticResourceModel(profiles, 1_000_000)
        assert model.available_capacity(0, 0) == model.available_capacity(0, 99)

    def test_out_of_range_client(self, model):
        with pytest.raises(IndexError):
            model.available_capacity(99, 0)
        with pytest.raises(ValueError):
            model.available_capacity(0, -1)


class TestTestbed:
    def test_device_mix_matches_table5(self):
        sim = TestbedSimulator()
        assert sim.num_devices == 17
        names = [spec.name for spec in TESTBED_DEVICE_SPECS]
        assert names == ["raspberry_pi_4b", "jetson_nano", "jetson_xavier_agx"]

    def test_profiles_cover_all_devices(self):
        sim = TestbedSimulator()
        profiles = sim.build_profiles(np.random.default_rng(0))
        assert len(profiles) == 17
        classes = [p.class_name for p in profiles]
        assert classes.count("weak") == 4
        assert classes.count("medium") == 10
        assert classes.count("strong") == 3

    def test_strong_devices_train_faster(self):
        sim = TestbedSimulator()
        sim.build_profiles()  # identity order: first 4 are weak Pi, last 3 are Xavier
        weak_time = sim.training_time(0, flops_per_sample=10_000_000, num_samples=100, local_epochs=1)
        strong_time = sim.training_time(16, flops_per_sample=10_000_000, num_samples=100, local_epochs=1)
        assert strong_time < weak_time

    def test_round_time_is_maximum(self):
        sim = TestbedSimulator()
        assert sim.round_time([1.0, 5.0, 3.0]) == 5.0
        assert sim.round_time([]) == 0.0

    def test_smaller_models_communicate_faster(self):
        sim = TestbedSimulator()
        sim.build_profiles()
        small = sim.communication_time(0, params_down=100_000, params_up=100_000)
        large = sim.communication_time(0, params_down=1_000_000, params_up=1_000_000)
        assert small < large
