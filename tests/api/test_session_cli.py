"""ExperimentSession (prepare-once reuse) and the ``python -m repro`` CLI."""

import json

import pytest

from repro.api.callbacks import Callback
from repro.api.cli import main
from repro.api.session import ExperimentSession
from repro.api.spec import ExperimentSpec
from repro.experiments import run_algorithm, run_comparison, prepare_experiment

# the CI-scale setting/prepared snapshot come session-scoped from tests/conftest.py


class TestSession:
    def test_prepares_exactly_once(self, monkeypatch, ci_setting):
        calls = []
        real = prepare_experiment

        def counting(setting):
            calls.append(setting)
            return real(setting)

        monkeypatch.setattr("repro.api.session.prepare_experiment", counting)
        session = ExperimentSession(ci_setting)
        session.run("heterofl")
        session.run("scalefl")
        session.compare(["all_large"])
        assert len(calls) == 1
        assert set(session.results) == {"heterofl", "scalefl", "all_large"}

    def test_comparison_is_paired_with_functional_runner(self, ci_setting, ci_prepared):
        """Session reuse must give the same numbers as a fresh prepared run."""
        session = ExperimentSession(ci_setting)
        session.run("adaptivefl")
        fresh = run_algorithm("adaptivefl", ci_prepared)
        assert session.results["adaptivefl"].full_accuracy == pytest.approx(fresh.full_accuracy)

    def test_run_comparison_matches_individual_runs(self, ci_setting, ci_prepared):
        results = run_comparison(ci_setting, ("heterofl", "adaptivefl"))
        single = run_algorithm("heterofl", ci_prepared)
        assert results["heterofl"].full_accuracy == pytest.approx(single.full_accuracy)

    def test_callback_factories_fresh_per_run(self, ci_setting):
        created = []

        class Tagged(Callback):
            def __init__(self):
                created.append(self)

        session = ExperimentSession(ci_setting).with_callback(Tagged)
        session.run("heterofl")
        session.run("scalefl")
        assert len(created) == 2

    def test_strategy_labelling(self, ci_setting):
        session = ExperimentSession(ci_setting)
        result = session.run("adaptivefl", selection_strategy="random")
        assert result.algorithm == "adaptivefl+random"
        assert "adaptivefl+random" in session.results

    def test_unknown_algorithm_fails_before_preparation(self, ci_setting):
        session = ExperimentSession(ci_setting)
        with pytest.raises(KeyError, match="registered"):
            session.run("fedprox")
        assert session._prepared is None  # nothing was materialised

    def test_from_spec_and_run_spec(self, tmp_path, ci_setting):
        spec = ExperimentSpec(setting=ci_setting, algorithms=("heterofl",), num_rounds=1)
        path = spec.save(tmp_path / "spec.json")
        session = ExperimentSession.from_spec(path)
        results = session.run_spec()
        assert set(results) == {"heterofl"}
        assert len(results["heterofl"].history) == 1

    def test_save_results(self, tmp_path, ci_setting):
        session = ExperimentSession(ci_setting)
        session.run("heterofl")
        written = session.save_results(tmp_path)
        names = {path.name for path in written}
        assert names == {"heterofl_history.json", "summary.json"}
        summary = json.loads((tmp_path / "summary.json").read_text())
        assert summary["setting"]["model"] == "simple_cnn"
        assert "heterofl" in summary["results"]
        history = json.loads((tmp_path / "heterofl_history.json").read_text())
        assert history["algorithm"] == "heterofl"
        assert len(history["rounds"]) == 2


class TestExecutorSelection:
    def test_with_executor_bakes_into_prepared(self, ci_setting):
        session = ExperimentSession(ci_setting).with_executor("thread", max_workers=2)
        assert session.prepared.federated_config.executor == "thread"
        assert session.prepared.federated_config.max_workers == 2

    def test_with_executor_after_preparation_rejected(self, ci_setting):
        session = ExperimentSession(ci_setting)
        session.prepared  # materialise
        with pytest.raises(RuntimeError, match="before"):
            session.with_executor("thread")

    def test_with_executor_keeps_attached_spec_consistent(self, ci_setting):
        spec = ExperimentSpec(setting=ci_setting, algorithms=("heterofl",), num_rounds=1)
        session = ExperimentSession.from_spec(spec).with_executor("thread", max_workers=2)
        assert session.spec.setting.executor == "thread"

    def test_cli_executor_flag_recorded_in_spec(self, tmp_path):
        rc = main(
            [
                "run", "--algorithm", "heterofl", "--scale", "ci", "--rounds", "1",
                "--executor", "thread", "--max-workers", "2", "--quiet", "--output-dir", str(tmp_path),
            ]
        )
        assert rc == 0
        spec = ExperimentSpec.load(tmp_path / "spec.json")
        assert spec.setting.executor == "thread"
        assert spec.setting.max_workers == 2


class TestScenarioSelection:
    def test_with_scenario_bakes_into_prepared(self, ci_setting):
        session = ExperimentSession(ci_setting).with_scenario("stable_lab")
        assert session.prepared.federated_config.scenario == "stable_lab"
        # the scenario's device mix drives the capacity profiles
        classes = [profile.class_name for profile in session.prepared.profiles]
        assert classes.count("weak") == 4 and classes.count("strong") == 3

    def test_with_scenario_after_preparation_rejected(self, ci_setting):
        session = ExperimentSession(ci_setting)
        session.prepared  # materialise
        with pytest.raises(RuntimeError, match="before"):
            session.with_scenario("stable_lab")

    def test_unknown_scenario_fails_at_setting_construction(self, ci_setting):
        session = ExperimentSession(ci_setting)
        with pytest.raises(ValueError, match="registered"):
            session.with_scenario("lunar_base")

    def test_scenario_run_records_fleet_accounting(self, ci_setting):
        session = ExperimentSession(ci_setting).with_scenario("stable_lab")
        result = session.run("heterofl")
        record = result.history.records[0]
        assert record.wall_clock_seconds is not None
        assert record.bytes_down > 0
        assert len(record.arrival_seconds) == len(record.selected_clients)

    def test_cli_scenario_flag_recorded_in_spec(self, tmp_path):
        rc = main(
            [
                "run", "--algorithm", "heterofl", "--scale", "ci", "--rounds", "1",
                "--scenario", "stable_lab", "--quiet", "--output-dir", str(tmp_path),
            ]
        )
        assert rc == 0
        spec = ExperimentSpec.load(tmp_path / "spec.json")
        assert spec.setting.scenario == "stable_lab"
        history = json.loads((tmp_path / "heterofl_history.json").read_text())
        assert history["rounds"][0]["wall_clock_seconds"] is not None

    def test_cli_unknown_scenario_is_a_clean_error(self, tmp_path, capsys):
        rc = main(["run", "--scenario", "lunar_base", "--scale", "ci", "--output-dir", str(tmp_path)])
        assert rc == 2
        assert "registered" in capsys.readouterr().err

    def test_scenarios_listing(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        for name in ("stable_lab", "flaky_edge", "diurnal", "congested_network", "battery_constrained", "paper_testbed"):
            assert name in out

    def test_scenarios_names_only(self, capsys):
        assert main(["scenarios", "--names"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert "paper_testbed" in lines
        assert all(" " not in line for line in lines)


class TestCli:
    def test_run_writes_history_and_summary(self, tmp_path, capsys):
        rc = main(
            [
                "run", "--algorithm", "adaptivefl", "--dataset", "cifar10", "--scale", "ci",
                "--rounds", "2", "--quiet", "--output-dir", str(tmp_path),
            ]
        )
        assert rc == 0
        history = json.loads((tmp_path / "adaptivefl_history.json").read_text())
        assert history["algorithm"] == "adaptivefl"
        assert len(history["rounds"]) == 2
        assert (tmp_path / "summary.json").exists()
        # the resolved spec is echoed for reproducibility
        spec = ExperimentSpec.load(tmp_path / "spec.json")
        assert spec.algorithms == ("adaptivefl",)
        assert "adaptivefl" in capsys.readouterr().out

    def test_compare_from_spec_file(self, tmp_path, capsys, ci_setting):
        spec = ExperimentSpec(setting=ci_setting, algorithms=("heterofl", "scalefl"), num_rounds=1)
        spec_path = spec.save(tmp_path / "spec.json")
        out_dir = tmp_path / "out"
        rc = main(["compare", "--spec", str(spec_path), "--quiet", "--output-dir", str(out_dir)])
        assert rc == 0
        summary = json.loads((out_dir / "summary.json").read_text())
        assert set(summary["results"]) == {"heterofl", "scalefl"}

    def test_stream_history_jsonl(self, tmp_path):
        rc = main(
            [
                "run", "--algorithm", "heterofl", "--scale", "ci", "--rounds", "2",
                "--quiet", "--stream-history", "--output-dir", str(tmp_path),
            ]
        )
        assert rc == 0
        lines = (tmp_path / "heterofl_rounds.jsonl").read_text().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["algorithm"] == "heterofl"

    def test_spec_conflicts_with_explicit_flags(self, tmp_path, capsys, ci_setting):
        spec_path = ExperimentSpec(setting=ci_setting, algorithms=("adaptivefl",)).save(tmp_path / "spec.json")
        rc = main(["run", "--spec", str(spec_path), "--algorithm", "heterofl"])
        assert rc == 2
        assert "cannot be combined with --spec" in capsys.readouterr().err

    def test_run_and_compare_accept_the_same_spec_with_strategy(self, tmp_path, ci_setting):
        # a spec whose strategy only applies to adaptivefl must be runnable
        # by BOTH subcommands, even with baselines in the algorithm list
        spec = ExperimentSpec(
            setting=ci_setting, algorithms=("heterofl", "adaptivefl"),
            selection_strategy="random", num_rounds=1,
        )
        spec_path = spec.save(tmp_path / "spec.json")
        for sub, out in (("run", "out_run"), ("compare", "out_cmp")):
            rc = main([sub, "--spec", str(spec_path), "--quiet", "--output-dir", str(tmp_path / out)])
            assert rc == 0, sub
            summary = json.loads((tmp_path / out / "summary.json").read_text())
            assert set(summary["results"]) == {"heterofl", "adaptivefl+random"}

    def test_missing_spec_file_is_a_clean_error(self, tmp_path, capsys):
        rc = main(["compare", "--spec", str(tmp_path / "nope.json")])
        assert rc == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_algorithm_is_a_clean_error(self, tmp_path, capsys):
        rc = main(["run", "--algorithm", "fedprox", "--scale", "ci", "--output-dir", str(tmp_path)])
        assert rc == 2
        assert "registered" in capsys.readouterr().err

    def test_algorithms_listing(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        for name in ("all_large", "decoupled", "heterofl", "scalefl", "adaptivefl"):
            assert name in out

    def test_progress_streams_by_default(self, tmp_path, capsys):
        rc = main(["run", "--algorithm", "heterofl", "--scale", "ci", "--rounds", "1", "--output-dir", str(tmp_path)])
        assert rc == 0
        assert "[heterofl] round 1/1" in capsys.readouterr().out
