"""Algorithm-registry behaviour: completeness, capabilities, fail-fast."""

import pytest

from repro.api.registry import (
    available_algorithms,
    get_algorithm,
    register_algorithm,
    unregister_algorithm,
    validate_algorithm_names,
)
from repro.baselines import ALGORITHMS
from repro.baselines.heterofl import HETEROFL_POOL_CONFIG
from repro.core.server import AdaptiveFL
from repro.experiments import ALL_ALGORITHM_NAMES, ExperimentSetting, run_comparison


@pytest.fixture(scope="module")
def prepared(ci_prepared):
    # the session-wide CI-scale snapshot from tests/conftest.py
    return ci_prepared


class TestCompleteness:
    def test_canonical_order(self):
        assert available_algorithms() == ("all_large", "decoupled", "heterofl", "scalefl", "adaptivefl")

    def test_all_algorithm_names_derives_from_registry(self):
        assert ALL_ALGORITHM_NAMES == available_algorithms()

    def test_legacy_baseline_mapping_cannot_drift(self):
        # every legacy ALGORITHMS entry is registered under the same factory
        for name, cls in ALGORITHMS.items():
            assert get_algorithm(name).factory is cls
        assert set(ALGORITHMS) | {"adaptivefl"} == set(available_algorithms())

    def test_every_spec_is_instantiable_from_algorithm_kwargs(self, prepared):
        for name in available_algorithms():
            spec = get_algorithm(name)
            algorithm = spec.build(prepared)
            assert algorithm.name == name
            assert algorithm.num_clients == prepared.scale.num_clients

    def test_descriptions_present(self):
        for name in available_algorithms():
            assert get_algorithm(name).description


class TestCapabilities:
    def test_heterofl_declares_pool_exclusion(self, prepared):
        spec = get_algorithm("heterofl")
        assert not spec.uses_pool_config
        algorithm = spec.build(prepared)
        # it keeps its canonical fixed pool rather than the experiment's
        assert algorithm.pool.config == HETEROFL_POOL_CONFIG

    def test_adaptivefl_declares_algorithm_config(self, prepared):
        spec = get_algorithm("adaptivefl")
        assert spec.uses_algorithm_config and spec.uses_selection_strategy
        algorithm = spec.build(prepared, selection_strategy="rl-c")
        assert isinstance(algorithm, AdaptiveFL)
        assert algorithm.strategy == "rl-c"

    def test_selection_strategy_rejected_for_baselines(self, prepared):
        with pytest.raises(ValueError, match="selection strategy"):
            get_algorithm("heterofl").build(prepared, selection_strategy="random")

    def test_run_labels(self):
        spec = get_algorithm("adaptivefl")
        assert spec.run_label(None) == "adaptivefl"
        assert spec.run_label("rl-cs") == "adaptivefl"
        assert spec.run_label("greedy") == "adaptivefl+greedy"
        assert get_algorithm("scalefl").run_label(None) == "scalefl"


class TestFailFast:
    def test_unknown_name_lists_registry(self):
        with pytest.raises(KeyError, match="adaptivefl"):
            get_algorithm("fedprox")

    def test_validation_happens_before_data_preparation(self, monkeypatch):
        def explode(*args, **kwargs):
            raise AssertionError("prepare_experiment must not run for unknown algorithms")

        monkeypatch.setattr("repro.experiments.runner.prepare_experiment", explode)
        with pytest.raises(KeyError, match="fedprox"):
            run_comparison(ExperimentSetting(model="simple_cnn", scale="ci"), ("heterofl", "fedprox"))

    def test_validate_returns_names(self):
        assert validate_algorithm_names(["heterofl"]) == ("heterofl",)


class TestCustomRegistration:
    def test_register_build_and_unregister(self, prepared):
        from repro.baselines.fedavg import AllLargeFedAvg

        @register_algorithm("all_large_again", description="clone", order=99)
        class Clone(AllLargeFedAvg):
            name = "all_large_again"

        try:
            assert "all_large_again" in available_algorithms()
            algorithm = get_algorithm("all_large_again").build(prepared)
            assert algorithm.name == "all_large_again"
        finally:
            unregister_algorithm("all_large_again")
        assert "all_large_again" not in available_algorithms()

    def test_all_algorithm_names_is_a_live_registry_view(self):
        import repro.experiments as experiments
        from repro.baselines.fedavg import AllLargeFedAvg

        register_algorithm("plugin_probe", order=60)(type("P", (AllLargeFedAvg,), {"name": "plugin_probe"}))
        try:
            assert "plugin_probe" in experiments.ALL_ALGORITHM_NAMES
        finally:
            unregister_algorithm("plugin_probe")
        assert "plugin_probe" not in experiments.ALL_ALGORITHM_NAMES

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_algorithm("adaptivefl")(object)

    def test_with_kwargs_binds_constructor_arguments(self, prepared):
        spec = get_algorithm("scalefl").with_kwargs(
            level_specs={"S": (0.3, 0.5, 0.1), "M": (0.6, 0.75, 0.15), "L": (1.0, 1.0, 1.0)}
        )
        algorithm = spec.build(prepared)
        assert set(algorithm.level_specs) == {"S", "M", "L"}
        assert algorithm.level_specs["S"][0] == pytest.approx(0.3)
