"""Config ``to_dict``/``from_dict`` round-trips and payload validation."""

import json

import pytest

from repro.api.spec import ExperimentSpec
from repro.core.config import AdaptiveFLConfig, FederatedConfig, LocalTrainingConfig, ModelPoolConfig
from repro.experiments.settings import ExperimentSetting

NON_DEFAULT_CONFIGS = [
    LocalTrainingConfig(local_epochs=2, batch_size=16, learning_rate=0.05, momentum=0.9, max_batches_per_epoch=7),
    FederatedConfig(num_rounds=12, clients_per_round=3, eval_every=4, eval_batch_size=64, seed=9),
    FederatedConfig(num_rounds=2, clients_per_round=2, scenario="flaky_edge"),
    ModelPoolConfig(models_per_level=2, level_width_ratios={"L": 1.0, "M": 0.5, "S": 0.3}, start_layers=(5, 3), min_start_layer=2),
    AdaptiveFLConfig(
        federated=FederatedConfig(num_rounds=4),
        local=LocalTrainingConfig(local_epochs=1),
        pool=ModelPoolConfig(models_per_level=1, start_layers=(4,), min_start_layer=2),
        selection_strategy="rl-c",
        resource_reward_cap=0.7,
    ),
    ExperimentSetting(dataset="cifar100", model="simple_cnn", distribution="dirichlet", alpha=0.3,
                      proportion="8:1:1", scale="ci", seed=3, executor="process", max_workers=4,
                      overrides={"num_rounds": 2}),
    ExperimentSetting(model="simple_cnn", scale="ci", scenario="paper_testbed"),
]


@pytest.mark.parametrize("config", NON_DEFAULT_CONFIGS, ids=lambda c: type(c).__name__)
class TestRoundTrip:
    def test_identity(self, config):
        assert type(config).from_dict(config.to_dict()) == config

    def test_json_round_trip(self, config):
        payload = json.loads(json.dumps(config.to_dict()))
        assert type(config).from_dict(payload) == config


@pytest.mark.parametrize(
    "cls",
    [LocalTrainingConfig, FederatedConfig, ModelPoolConfig, AdaptiveFLConfig, ExperimentSetting],
)
class TestBadPayloads:
    def test_unknown_key_rejected(self, cls):
        payload = cls().to_dict()
        payload["not_a_field"] = 1
        with pytest.raises(ValueError, match="not_a_field"):
            cls.from_dict(payload)

    def test_non_mapping_rejected(self, cls):
        with pytest.raises(ValueError, match="mapping"):
            cls.from_dict([1, 2, 3])


class TestValidationStillApplies:
    def test_bad_value_hits_post_init(self):
        payload = LocalTrainingConfig().to_dict()
        payload["batch_size"] = -1
        with pytest.raises(ValueError, match="batch_size"):
            LocalTrainingConfig.from_dict(payload)

    def test_unknown_scenario_rejected_everywhere(self):
        with pytest.raises(ValueError, match="registered"):
            FederatedConfig(scenario="lunar_base")
        with pytest.raises(ValueError, match="registered"):
            ExperimentSetting(model="simple_cnn", scenario="lunar_base")

    def test_nested_pool_validation(self):
        payload = AdaptiveFLConfig().to_dict()
        payload["pool"]["start_layers"] = [1, 2, 3]  # must be sorted descending
        with pytest.raises(ValueError, match="start_layers"):
            AdaptiveFLConfig.from_dict(payload)

    def test_partial_payload_uses_defaults(self):
        config = AdaptiveFLConfig.from_dict({"selection_strategy": "random"})
        assert config.selection_strategy == "random"
        assert config.federated == FederatedConfig()

    def test_start_layers_list_coerced_to_tuple(self):
        config = ModelPoolConfig.from_dict({"models_per_level": 2, "start_layers": [5, 3], "min_start_layer": 2})
        assert config.start_layers == (5, 3)

    def test_fractional_start_layers_rejected_not_truncated(self):
        with pytest.raises(ValueError, match="whole numbers"):
            ModelPoolConfig.from_dict({"models_per_level": 2, "start_layers": [7.9, 6], "min_start_layer": 2})

    def test_whole_float_start_layers_accepted(self):
        config = ModelPoolConfig.from_dict({"models_per_level": 2, "start_layers": [5.0, 3.0], "min_start_layer": 2})
        assert config.start_layers == (5, 3)


class TestExperimentSpec:
    def spec(self):
        return ExperimentSpec(
            setting=ExperimentSetting(model="simple_cnn", scale="ci"),
            algorithms=("heterofl", "adaptivefl"),
            selection_strategy="rl-cs",
            num_rounds=2,
        )

    def test_round_trip(self):
        spec = self.spec()
        assert ExperimentSpec.from_dict(spec.to_dict()) == spec

    def test_save_load(self, tmp_path):
        spec = self.spec()
        path = spec.save(tmp_path / "spec.json")
        assert ExperimentSpec.load(path) == spec
        # the file is real JSON
        assert json.loads(path.read_text())["algorithms"] == ["heterofl", "adaptivefl"]

    def test_algorithms_coerced_to_tuple(self):
        spec = ExperimentSpec.from_dict({"algorithms": ["heterofl"]})
        assert spec.algorithms == ("heterofl",)

    def test_unknown_key_rejected(self):
        with pytest.raises(ValueError, match="budget"):
            ExperimentSpec.from_dict({"budget": 10})

    def test_bad_rounds_rejected(self):
        with pytest.raises(ValueError, match="num_rounds"):
            ExperimentSpec.from_dict({"num_rounds": 0})
