"""Callback protocol: invocation order, early stopping, budgets, streaming."""

import json

import pytest

from repro.api.callbacks import (
    Callback,
    CallbackList,
    EarlyStopping,
    JsonHistoryStreamer,
    ProgressCallback,
    WallClockBudget,
)
from repro.core.config import AdaptiveFLConfig, FederatedConfig, LocalTrainingConfig
from repro.core.server import AdaptiveFL


class RecordingCallback(Callback):
    """Logs every hook invocation as (hook, round_index)."""

    def __init__(self):
        self.events = []

    def on_round_start(self, algorithm, round_index):
        self.events.append(("round_start", round_index))

    def on_evaluate(self, algorithm, record):
        self.events.append(("evaluate", record.round_index))

    def on_round_end(self, algorithm, record):
        self.events.append(("round_end", record.round_index))

    def on_checkpoint(self, algorithm, record):
        self.events.append(("checkpoint", record.round_index))

    def on_fit_end(self, algorithm, history):
        self.events.append(("fit_end", len(history)))


def make_algorithm(tiny_cnn, tiny_federated_setup, tiny_pool_config, *, num_rounds=4, eval_every=2):
    federated = FederatedConfig(num_rounds=num_rounds, clients_per_round=3, eval_every=eval_every)
    local = LocalTrainingConfig(local_epochs=1, batch_size=16, max_batches_per_epoch=2)
    config = AdaptiveFLConfig(federated=federated, local=local, pool=tiny_pool_config)
    return AdaptiveFL(
        architecture=tiny_cnn,
        train_dataset=tiny_federated_setup["train"],
        partition=tiny_federated_setup["partition"],
        test_dataset=tiny_federated_setup["test"],
        profiles=tiny_federated_setup["profiles"],
        resource_model=tiny_federated_setup["resource_model"],
        algorithm_config=config,
        seed=0,
    )


class TestInvocationOrder:
    def test_hooks_fire_in_documented_order(self, tiny_cnn, tiny_federated_setup, tiny_pool_config):
        recorder = RecordingCallback()
        algorithm = make_algorithm(tiny_cnn, tiny_federated_setup, tiny_pool_config, num_rounds=4, eval_every=2)
        algorithm.run(callbacks=[recorder])
        assert recorder.events == [
            ("round_start", 0),
            ("round_end", 0),
            ("checkpoint", 0),
            ("round_start", 1),
            ("evaluate", 1),  # eval_every=2: rounds 1 and 3 are evaluated
            ("round_end", 1),
            ("checkpoint", 1),
            ("round_start", 2),
            ("round_end", 2),
            ("checkpoint", 2),
            ("round_start", 3),
            ("evaluate", 3),
            ("round_end", 3),
            ("checkpoint", 3),
            ("fit_end", 4),
        ]

    def test_checkpoint_fires_after_late_early_stop_evaluation(
        self, tiny_cnn, tiny_federated_setup, tiny_pool_config
    ):
        """On an early stop at an unevaluated round, on_checkpoint still sees
        the final (late-evaluated) record — the guarantee RunRecorder needs."""
        recorder = RecordingCallback()
        seen = []

        class StopAtFirstRound(Callback):
            def on_round_end(self, algorithm, record):
                algorithm.request_stop("test stop")

        class CheckpointReader(Callback):
            def on_checkpoint(self, algorithm, record):
                seen.append(record.full_accuracy)

        algorithm = make_algorithm(tiny_cnn, tiny_federated_setup, tiny_pool_config, num_rounds=4, eval_every=2)
        algorithm.run(callbacks=[recorder, StopAtFirstRound(), CheckpointReader()])
        # round 0 is not on the eval cadence; the stop triggers the late evaluation
        assert recorder.events == [
            ("round_start", 0),
            ("round_end", 0),
            ("evaluate", 0),
            ("checkpoint", 0),
            ("fit_end", 1),
        ]
        assert seen == [algorithm.history.records[-1].full_accuracy]
        assert seen[0] is not None

    def test_request_stop_from_on_checkpoint_ends_after_current_round(
        self, tiny_cnn, tiny_federated_setup, tiny_pool_config
    ):
        """A stop requested inside on_checkpoint (e.g. a persistence failure)
        must end training after the round in flight, not one round later."""

        class StopFromCheckpoint(Callback):
            def on_checkpoint(self, algorithm, record):
                if record.round_index == 1:
                    algorithm.request_stop("checkpoint failed")

        algorithm = make_algorithm(tiny_cnn, tiny_federated_setup, tiny_pool_config, num_rounds=4, eval_every=2)
        algorithm.run(callbacks=[StopFromCheckpoint()])
        assert len(algorithm.history) == 2  # rounds 0 and 1 only
        assert algorithm.stop_reason == "checkpoint failed"
        assert algorithm.history.records[-1].full_accuracy is not None

    def test_callback_list_dispatches_to_all(self, tiny_cnn, tiny_federated_setup, tiny_pool_config):
        first, second = RecordingCallback(), RecordingCallback()
        algorithm = make_algorithm(tiny_cnn, tiny_federated_setup, tiny_pool_config, num_rounds=1, eval_every=1)
        algorithm.run(callbacks=CallbackList([first, second]).callbacks)
        assert first.events == second.events

    def test_planned_rounds_visible_to_callbacks(self, tiny_cnn, tiny_federated_setup, tiny_pool_config):
        seen = []

        class PlanReader(Callback):
            def on_round_start(self, algorithm, round_index):
                seen.append(algorithm.planned_rounds)

        algorithm = make_algorithm(tiny_cnn, tiny_federated_setup, tiny_pool_config, num_rounds=2, eval_every=2)
        algorithm.run(callbacks=[PlanReader()])
        assert seen == [2, 2]


class TestEarlyStopping:
    def test_stops_when_no_improvement(self, tiny_cnn, tiny_federated_setup, tiny_pool_config):
        # min_delta=1.0 means accuracy (<=1) can never improve "enough":
        # the first evaluation sets the best, the second is stale -> stop.
        algorithm = make_algorithm(tiny_cnn, tiny_federated_setup, tiny_pool_config, num_rounds=6, eval_every=1)
        history = algorithm.run(callbacks=[EarlyStopping(patience=1, min_delta=1.0)])
        assert len(history) == 2
        assert algorithm.stop_reason is not None and "early stopping" in algorithm.stop_reason

    def test_patience_counts_evaluations_not_rounds(self, tiny_cnn, tiny_federated_setup, tiny_pool_config):
        # eval_every=2 over 6 rounds -> evaluations at rounds 1, 3, 5.
        # patience=1 with impossible min_delta stops after the 2nd evaluation.
        algorithm = make_algorithm(tiny_cnn, tiny_federated_setup, tiny_pool_config, num_rounds=6, eval_every=2)
        history = algorithm.run(callbacks=[EarlyStopping(patience=1, min_delta=1.0)])
        assert len(history) == 4  # rounds 0..3; stop requested at round 3's evaluation

    def test_run_completes_without_stop(self, tiny_cnn, tiny_federated_setup, tiny_pool_config):
        algorithm = make_algorithm(tiny_cnn, tiny_federated_setup, tiny_pool_config, num_rounds=3, eval_every=1)
        history = algorithm.run(callbacks=[EarlyStopping(patience=10)])
        assert len(history) == 3
        assert algorithm.stop_reason is None

    def test_reused_instance_resets_between_runs(self, tiny_cnn, tiny_federated_setup, tiny_pool_config):
        stopper = EarlyStopping(patience=1, min_delta=1.0)
        first = make_algorithm(tiny_cnn, tiny_federated_setup, tiny_pool_config, num_rounds=6, eval_every=1)
        first.run(callbacks=[stopper])
        assert stopper.best is None and stopper.stale_evaluations == 0  # reset at fit end
        second = make_algorithm(tiny_cnn, tiny_federated_setup, tiny_pool_config, num_rounds=6, eval_every=1)
        history = second.run(callbacks=[stopper])
        assert len(history) == 2  # judged afresh: stops after its own 2nd evaluation

    def test_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(monitor="loss")
        with pytest.raises(ValueError):
            EarlyStopping(patience=0)


class TestWallClockBudget:
    def test_stops_after_budget(self, tiny_cnn, tiny_federated_setup, tiny_pool_config):
        fake_time = iter(range(100))
        budget = WallClockBudget(budget_seconds=1.5, clock=lambda: float(next(fake_time)))
        algorithm = make_algorithm(tiny_cnn, tiny_federated_setup, tiny_pool_config, num_rounds=6, eval_every=6)
        history = algorithm.run(callbacks=[budget])
        # clock ticks: first round_start=0, round ends at 1 (elapsed 1 < 1.5)
        # and 2 (elapsed 2 >= 1.5) -> stops after the second round
        assert len(history) == 2
        assert "budget" in algorithm.stop_reason

    def test_validation(self):
        with pytest.raises(ValueError):
            WallClockBudget(0)

    def test_reused_instance_grants_each_run_its_own_budget(
        self, tiny_cnn, tiny_federated_setup, tiny_pool_config
    ):
        # passing the same instance to several runs (as run_comparison allows)
        # must not leak the first run's start time into the second
        fake_time = iter(range(100))
        budget = WallClockBudget(budget_seconds=1.5, clock=lambda: float(next(fake_time)))
        first = make_algorithm(tiny_cnn, tiny_federated_setup, tiny_pool_config, num_rounds=6, eval_every=6)
        second = make_algorithm(tiny_cnn, tiny_federated_setup, tiny_pool_config, num_rounds=6, eval_every=6)
        assert len(first.run(callbacks=[budget])) == 2
        assert len(second.run(callbacks=[budget])) == 2  # fresh budget, not instantly exhausted

    def test_stop_before_first_evaluation_still_evaluates_final_round(
        self, tiny_cnn, tiny_federated_setup, tiny_pool_config
    ):
        # budget exhausts after round 1, long before eval_every=6 would
        # evaluate; the truncated history must still end evaluated so
        # AlgorithmResult/history files can always be produced
        budget = WallClockBudget(budget_seconds=0.5, clock=iter(range(100)).__next__)
        algorithm = make_algorithm(tiny_cnn, tiny_federated_setup, tiny_pool_config, num_rounds=6, eval_every=6)
        history = algorithm.run(callbacks=[budget])
        assert len(history) == 1
        assert history.records[-1].full_accuracy is not None
        assert history.final_accuracy("full") >= 0.0


class TestJsonHistoryStreamer:
    def test_streams_one_line_per_round(self, tmp_path, tiny_cnn, tiny_federated_setup, tiny_pool_config):
        path = tmp_path / "rounds.jsonl"
        algorithm = make_algorithm(tiny_cnn, tiny_federated_setup, tiny_pool_config, num_rounds=3, eval_every=3)
        algorithm.run(callbacks=[JsonHistoryStreamer(path)])
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(lines) == 3
        assert [line["round"] for line in lines] == [0, 1, 2]
        assert all(line["algorithm"] == "adaptivefl" for line in lines)
        assert lines[-1]["full_accuracy"] is not None  # last round is evaluated


class TestProgressCompat:
    def test_progress_flag_prints_per_round(self, capsys, tiny_cnn, tiny_federated_setup, tiny_pool_config):
        algorithm = make_algorithm(tiny_cnn, tiny_federated_setup, tiny_pool_config, num_rounds=2, eval_every=2)
        algorithm.run(progress=True)
        out = capsys.readouterr().out
        assert "[adaptivefl] round 1/2" in out
        assert "[adaptivefl] round 2/2" in out

    def test_progress_callback_every(self, capsys, tiny_cnn, tiny_federated_setup, tiny_pool_config):
        algorithm = make_algorithm(tiny_cnn, tiny_federated_setup, tiny_pool_config, num_rounds=4, eval_every=4)
        algorithm.run(callbacks=[ProgressCallback(every=2)])
        out = capsys.readouterr().out
        assert "round 2/4" in out and "round 4/4" in out
        assert "round 1/4" not in out and "round 3/4" not in out
