"""Unit and property tests of the stateless numerical operations."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import functional as F


class TestConvOutputSize:
    def test_basic(self):
        assert F.conv_output_size(32, 3, 1, 1) == 32
        assert F.conv_output_size(32, 2, 2, 0) == 16
        assert F.conv_output_size(28, 5, 1, 2) == 28

    def test_invalid_raises(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)


class TestIm2Col:
    def test_shape(self):
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8))
        cols, oh, ow = F.im2col(x, 3, 3, 1, 1)
        assert (oh, ow) == (8, 8)
        # NC layout: (N, C*kh*kw, oh*ow)
        assert cols.shape == (2, 3 * 9, 8 * 8)

    def test_identity_kernel_recovers_input(self):
        x = np.random.default_rng(1).normal(size=(1, 2, 5, 5))
        cols, oh, ow = F.im2col(x, 1, 1, 1, 0)
        assert np.allclose(cols.reshape(1, 2, 5, 5), x)

    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(1, 3),
        c=st.integers(1, 4),
        size=st.integers(4, 9),
        kernel=st.integers(1, 3),
        stride=st.integers(1, 2),
        padding=st.integers(0, 1),
    )
    def test_col2im_is_adjoint_of_im2col(self, n, c, size, kernel, stride, padding):
        """<im2col(x), y> == <x, col2im(y)> for all x, y (adjoint property)."""
        if size + 2 * padding < kernel:
            return
        rng = np.random.default_rng(42)
        x = rng.normal(size=(n, c, size, size))
        cols, _, _ = F.im2col(x, kernel, kernel, stride, padding)
        y = rng.normal(size=cols.shape)
        lhs = float((cols * y).sum())
        back = F.col2im(y, x.shape, kernel, kernel, stride, padding)
        rhs = float((x * back).sum())
        assert lhs == pytest.approx(rhs, rel=1e-9)


class TestConvForward:
    def test_matches_naive_convolution(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 2, 5, 5))
        w = rng.normal(size=(3, 2, 3, 3))
        b = rng.normal(size=3)
        out, _ = F.conv2d_forward(x, w, b, stride=1, padding=1)

        xp = np.pad(x, ((0, 0), (0, 0), (1, 1), (1, 1)))
        expected = np.zeros((1, 3, 5, 5))
        for co in range(3):
            for i in range(5):
                for j in range(5):
                    expected[0, co, i, j] = (xp[0, :, i : i + 3, j : j + 3] * w[co]).sum() + b[co]
        assert np.allclose(out, expected)

    def test_channel_mismatch_raises(self):
        x = np.zeros((1, 3, 5, 5))
        w = np.zeros((2, 4, 3, 3))
        with pytest.raises(ValueError):
            F.conv2d_forward(x, w, None, 1, 1)


class TestDepthwiseConv:
    def test_each_channel_independent(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(1, 3, 6, 6))
        w = rng.normal(size=(3, 1, 3, 3))
        out, _ = F.depthwise_conv2d_forward(x, w, None, 1, 1)
        # channel c of the output must equal a dense conv restricted to channel c
        for c in range(3):
            dense, _ = F.conv2d_forward(x[:, c : c + 1], w[c : c + 1], None, 1, 1)
            assert np.allclose(out[:, c : c + 1], dense)


class TestPooling:
    def test_maxpool_values(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out, _ = F.maxpool2d_forward(x, 2, 2)
        assert np.allclose(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_backward_routes_to_argmax(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out, cache = F.maxpool2d_forward(x, 2, 2)
        grad = F.maxpool2d_backward(np.ones_like(out), cache)
        expected = np.zeros((1, 1, 4, 4))
        expected[0, 0, 1, 1] = expected[0, 0, 1, 3] = expected[0, 0, 3, 1] = expected[0, 0, 3, 3] = 1
        assert np.allclose(grad, expected)

    def test_avgpool_values_and_backward(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out, cache = F.avgpool2d_forward(x, 2, 2)
        assert np.allclose(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])
        grad = F.avgpool2d_backward(np.ones_like(out), cache)
        assert np.allclose(grad, np.full((1, 1, 4, 4), 0.25))


class TestSoftmax:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.floats(-50, 50), min_size=2, max_size=8))
    def test_softmax_is_distribution(self, logits):
        probs = F.softmax(np.array([logits]))
        assert probs.min() >= 0
        assert probs.sum() == pytest.approx(1.0)

    def test_shift_invariance(self):
        logits = np.array([[1.0, 2.0, 3.0]])
        assert np.allclose(F.softmax(logits), F.softmax(logits + 100.0))

    def test_log_softmax_consistency(self):
        logits = np.random.default_rng(0).normal(size=(4, 6))
        assert np.allclose(np.exp(F.log_softmax(logits)), F.softmax(logits))


class TestOneHot:
    def test_values(self):
        out = F.one_hot(np.array([0, 2, 1]), 3)
        assert np.allclose(out, np.eye(3)[[0, 2, 1]])

    def test_out_of_range_raises(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)
