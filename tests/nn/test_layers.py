"""Layer-level tests: shapes, modes and numerical gradient checks."""

import numpy as np
import pytest

from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    ReLU6,
)
from repro.nn.module import Sequential


def promote_to_float64(model):
    """Cast a model's parameters and buffers to double precision in place.

    Central differences with ``eps=1e-6`` need far more resolution than the
    stack's float32 default, so gradient checks run the model in float64.
    """
    for param in model.parameters():
        param.data = param.data.astype(np.float64)
        param.grad = param.grad.astype(np.float64)
    for module in model.modules():
        for name, buf in list(module._buffers.items()):
            module.register_buffer(name, buf.astype(np.float64))
    return model


def numerical_gradient_check(model, x, loss_of_output, n_checks=6, eps=1e-6, tol=1e-5):
    """Compare analytic parameter gradients against central differences."""
    promote_to_float64(model)
    model.train()
    model.zero_grad()
    out = model(x)
    loss, grad_out = loss_of_output(out)
    model.backward(grad_out)
    rng = np.random.default_rng(0)
    params = list(model.named_parameters())
    assert params, "model under test has no parameters"
    for name, param in params:
        for _ in range(n_checks):
            idx = tuple(rng.integers(0, s) for s in param.data.shape)
            original = param.data[idx]
            param.data[idx] = original + eps
            plus, _ = loss_of_output(model(x))
            param.data[idx] = original - eps
            minus, _ = loss_of_output(model(x))
            param.data[idx] = original
            numeric = (plus - minus) / (2 * eps)
            analytic = param.grad[idx]
            assert numeric == pytest.approx(analytic, rel=1e-3, abs=tol), f"gradient mismatch in {name}"


def sum_of_squares(out):
    """Simple smooth loss: 0.5 * ||out||^2 with gradient out."""
    return 0.5 * float((out**2).sum()), out


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestConv2d:
    def test_output_shape(self, rng):
        layer = Conv2d(3, 8, 3, stride=1, padding=1, rng=rng)
        out = layer(rng.normal(size=(2, 3, 10, 10)))
        assert out.shape == (2, 8, 10, 10)

    def test_gradients(self, rng):
        layer = Conv2d(2, 3, 3, padding=1, rng=rng)
        numerical_gradient_check(layer, rng.normal(size=(2, 2, 5, 5)), sum_of_squares)

    def test_invalid_channels(self):
        with pytest.raises(ValueError):
            Conv2d(0, 3, 3)


class TestDepthwiseConv2d:
    def test_output_shape(self, rng):
        layer = DepthwiseConv2d(4, 3, stride=2, padding=1, rng=rng)
        out = layer(rng.normal(size=(2, 4, 8, 8)))
        assert out.shape == (2, 4, 4, 4)

    def test_gradients(self, rng):
        layer = DepthwiseConv2d(3, 3, padding=1, rng=rng)
        numerical_gradient_check(layer, rng.normal(size=(2, 3, 5, 5)), sum_of_squares)


class TestLinear:
    def test_output_shape(self, rng):
        layer = Linear(12, 7, rng=rng)
        assert layer(rng.normal(size=(4, 12))).shape == (4, 7)

    def test_gradients(self, rng):
        layer = Linear(6, 4, rng=rng)
        numerical_gradient_check(layer, rng.normal(size=(3, 6)), sum_of_squares)

    def test_input_gradient(self, rng):
        layer = Linear(5, 2, rng=rng)
        x = rng.normal(size=(3, 5))
        out = layer(x)
        grad_in = layer.backward(np.ones_like(out))
        assert grad_in.shape == x.shape
        assert np.allclose(grad_in, np.ones((3, 2)) @ layer.weight.data)


class TestBatchNorm2d:
    def test_training_normalises_batch(self, rng):
        layer = BatchNorm2d(4)
        x = rng.normal(loc=3.0, scale=2.0, size=(8, 4, 5, 5))
        out = layer(x)
        assert np.allclose(out.mean(axis=(0, 2, 3)), 0.0, atol=1e-7)
        assert np.allclose(out.var(axis=(0, 2, 3)), 1.0, atol=1e-3)

    def test_running_stats_updated_and_used_in_eval(self, rng):
        layer = BatchNorm2d(2, momentum=0.5)
        x = rng.normal(loc=1.0, size=(16, 2, 4, 4))
        layer.train()
        layer(x)
        assert not np.allclose(layer._buffers["running_mean"], 0.0)
        layer.eval()
        out_eval = layer(x)
        # eval output differs from train output because running stats are used
        layer.train()
        out_train = layer(x)
        assert not np.allclose(out_eval, out_train)

    def test_gradients(self, rng):
        model = Sequential(Conv2d(2, 3, 3, padding=1, rng=rng), BatchNorm2d(3))
        numerical_gradient_check(model, rng.normal(size=(4, 2, 5, 5)), sum_of_squares)

    def test_channel_mismatch_raises(self, rng):
        layer = BatchNorm2d(3)
        with pytest.raises(ValueError):
            layer(rng.normal(size=(2, 4, 5, 5)))


class TestActivationsAndPooling:
    def test_relu_zeroes_negatives(self):
        layer = ReLU()
        out = layer(np.array([[-1.0, 2.0]]))
        assert np.allclose(out, [[0.0, 2.0]])
        assert np.allclose(layer.backward(np.ones((1, 2))), [[0.0, 1.0]])

    def test_relu6_clips(self):
        layer = ReLU6()
        out = layer(np.array([[-1.0, 3.0, 9.0]]))
        assert np.allclose(out, [[0.0, 3.0, 6.0]])
        assert np.allclose(layer.backward(np.ones((1, 3))), [[0.0, 1.0, 0.0]])

    def test_maxpool_module(self, rng):
        layer = MaxPool2d(2)
        out = layer(rng.normal(size=(1, 2, 6, 6)))
        assert out.shape == (1, 2, 3, 3)
        assert layer.backward(np.ones_like(out)).shape == (1, 2, 6, 6)

    def test_avgpool_module(self, rng):
        layer = AvgPool2d(2)
        assert layer(rng.normal(size=(1, 2, 6, 6))).shape == (1, 2, 3, 3)

    def test_global_avgpool(self, rng):
        layer = GlobalAvgPool2d()
        x = rng.normal(size=(2, 3, 4, 4))
        out = layer(x)
        assert out.shape == (2, 3)
        assert np.allclose(out, x.mean(axis=(2, 3)))
        grad = layer.backward(np.ones((2, 3)))
        assert np.allclose(grad, 1.0 / 16)

    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.normal(size=(2, 3, 4, 4))
        out = layer(x)
        assert out.shape == (2, 48)
        assert np.allclose(layer.backward(out), x)

    def test_identity(self, rng):
        layer = Identity()
        x = rng.normal(size=(2, 5))
        assert np.allclose(layer(x), x)
        assert np.allclose(layer.backward(x), x)


class TestDropout:
    def test_eval_mode_is_identity(self, rng):
        layer = Dropout(0.5, rng=rng)
        layer.eval()
        x = rng.normal(size=(4, 10))
        assert np.allclose(layer(x), x)

    def test_training_scales_kept_units(self):
        layer = Dropout(0.5, rng=np.random.default_rng(0))
        layer.train()
        x = np.ones((200, 50))
        out = layer(x)
        kept = out[out > 0]
        assert np.allclose(kept, 2.0)
        # roughly half the units survive
        assert 0.4 < (out > 0).mean() < 0.6

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            Dropout(1.0)
