"""Module system tests: registration, traversal and state dicts."""

import numpy as np
import pytest

from repro.nn.layers import BatchNorm2d, Conv2d, Linear, ReLU
from repro.nn.module import Module, Parameter, Sequential


def build_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(Conv2d(1, 4, 3, padding=1, rng=rng), BatchNorm2d(4), ReLU(), Linear(4, 2, rng=rng))


class TestParameter:
    def test_zero_grad(self):
        p = Parameter(np.ones((2, 2)))
        p.grad += 3.0
        p.zero_grad()
        assert np.allclose(p.grad, 0.0)

    def test_shape_and_size(self):
        p = Parameter(np.zeros((3, 4)))
        assert p.shape == (3, 4)
        assert p.size == 12


class TestTraversal:
    def test_named_parameters_are_unique_and_complete(self):
        model = build_model()
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == len(set(names))
        # conv weight+bias, bn weight+bias, linear weight+bias
        assert len(names) == 6

    def test_named_buffers_include_running_stats(self):
        model = build_model()
        buffer_names = {name for name, _ in model.named_buffers()}
        assert any(name.endswith("running_mean") for name in buffer_names)
        assert any(name.endswith("running_var") for name in buffer_names)

    def test_num_parameters(self):
        model = build_model()
        expected = 4 * 1 * 9 + 4 + 4 + 4 + 2 * 4 + 2
        assert model.num_parameters() == expected

    def test_train_eval_propagates(self):
        model = build_model()
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())


class TestStateDict:
    def test_roundtrip(self):
        source = build_model(seed=1)
        target = build_model(seed=2)
        target.load_state_dict(source.state_dict())
        for (name_a, value_a), (name_b, value_b) in zip(
            sorted(source.state_dict().items()), sorted(target.state_dict().items())
        ):
            assert name_a == name_b
            assert np.allclose(value_a, value_b)

    def test_state_dict_is_a_copy(self):
        model = build_model()
        state = model.state_dict()
        first = next(iter(state))
        state[first] += 100.0
        assert not np.allclose(model.state_dict()[first], state[first])

    def test_shape_mismatch_raises(self):
        model = build_model()
        state = model.state_dict()
        key = next(name for name in state if name.endswith("weight"))
        state[key] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.load_state_dict(state)

    def test_missing_key_strict_raises(self):
        model = build_model()
        state = model.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            model.load_state_dict(state, strict=True)

    def test_zero_grad_clears_all(self):
        model = build_model()
        for param in model.parameters():
            param.grad += 1.0
        model.zero_grad()
        assert all(np.allclose(p.grad, 0.0) for p in model.parameters())


class TestSequential:
    def test_indexing_and_iteration(self):
        model = build_model()
        assert len(model) == 4
        assert isinstance(model[0], Conv2d)
        assert [type(m).__name__ for m in model] == ["Conv2d", "BatchNorm2d", "ReLU", "Linear"]

    def test_append(self):
        model = Sequential(ReLU())
        model.append(ReLU())
        assert len(model) == 2

    def test_forward_not_implemented_on_base(self):
        with pytest.raises(NotImplementedError):
            Module().forward(np.zeros((1,)))
