"""Loss-function and optimizer tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.losses import CrossEntropyLoss, KLDivergenceLoss, accuracy
from repro.nn.module import Parameter
from repro.nn.optim import SGD, ConstantLR, CosineLR, StepLR


class TestCrossEntropy:
    def test_matches_manual_value(self):
        logits = np.array([[2.0, 0.0, 0.0], [0.0, 3.0, 0.0]])
        targets = np.array([0, 1])
        loss_fn = CrossEntropyLoss()
        loss = loss_fn(logits, targets)
        manual = -np.log(np.exp(2) / (np.exp(2) + 2)) - np.log(np.exp(3) / (np.exp(3) + 2))
        assert loss == pytest.approx(manual / 2)

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(0)
        logits = rng.normal(size=(4, 5))
        targets = rng.integers(0, 5, size=4)
        loss_fn = CrossEntropyLoss()
        loss_fn(logits, targets)
        grad = loss_fn.backward()
        eps = 1e-6
        for i in range(4):
            for j in range(5):
                bumped = logits.copy()
                bumped[i, j] += eps
                plus = CrossEntropyLoss()(bumped, targets)
                bumped[i, j] -= 2 * eps
                minus = CrossEntropyLoss()(bumped, targets)
                assert grad[i, j] == pytest.approx((plus - minus) / (2 * eps), abs=1e-6)

    def test_perfect_prediction_has_small_loss(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        assert CrossEntropyLoss()(logits, np.array([0, 1])) == pytest.approx(0.0, abs=1e-10)

    def test_label_smoothing_increases_loss_on_confident_predictions(self):
        logits = np.array([[50.0, 0.0]])
        targets = np.array([0])
        assert CrossEntropyLoss(label_smoothing=0.1)(logits, targets) > CrossEntropyLoss()(logits, targets)

    def test_backward_before_forward_raises(self):
        with pytest.raises(RuntimeError):
            CrossEntropyLoss().backward()


class TestKLDivergence:
    def test_zero_when_identical(self):
        logits = np.random.default_rng(0).normal(size=(3, 4))
        assert KLDivergenceLoss()(logits, logits) == pytest.approx(0.0, abs=1e-12)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(0, 10_000))
    def test_non_negative(self, seed):
        rng = np.random.default_rng(seed)
        student = rng.normal(size=(2, 5))
        teacher = rng.normal(size=(2, 5))
        assert KLDivergenceLoss()(student, teacher) >= -1e-12

    def test_gradient_matches_numeric(self):
        rng = np.random.default_rng(1)
        student = rng.normal(size=(2, 3))
        teacher = rng.normal(size=(2, 3))
        loss_fn = KLDivergenceLoss(temperature=2.0)
        loss_fn(student, teacher)
        grad = loss_fn.backward()
        eps = 1e-6
        for i in range(2):
            for j in range(3):
                bumped = student.copy()
                bumped[i, j] += eps
                plus = KLDivergenceLoss(temperature=2.0)(bumped, teacher)
                bumped[i, j] -= 2 * eps
                minus = KLDivergenceLoss(temperature=2.0)(bumped, teacher)
                assert grad[i, j] == pytest.approx((plus - minus) / (2 * eps), abs=1e-6)


class TestAccuracy:
    def test_values(self):
        logits = np.array([[0.9, 0.1], [0.2, 0.8], [0.7, 0.3]])
        assert accuracy(logits, np.array([0, 1, 1])) == pytest.approx(2 / 3)

    def test_empty(self):
        assert accuracy(np.zeros((0, 3)), np.zeros(0)) == 0.0


class TestSGD:
    def test_plain_step(self):
        p = Parameter(np.array([1.0, 2.0]))
        p.grad[:] = [0.5, -0.5]
        SGD([p], lr=0.1).step()
        assert np.allclose(p.data, [0.95, 2.05])

    def test_momentum_accumulates(self):
        p = Parameter(np.array([0.0]))
        opt = SGD([p], lr=1.0, momentum=0.5)
        p.grad[:] = 1.0
        opt.step()
        assert p.data[0] == pytest.approx(-1.0)
        p.grad[:] = 1.0
        opt.step()
        # velocity = 0.5*1 + 1 = 1.5
        assert p.data[0] == pytest.approx(-2.5)

    def test_weight_decay(self):
        p = Parameter(np.array([2.0]))
        p.grad[:] = 0.0
        SGD([p], lr=0.1, weight_decay=0.5).step()
        assert p.data[0] == pytest.approx(2.0 - 0.1 * 0.5 * 2.0)

    def test_zero_grad(self):
        p = Parameter(np.array([1.0]))
        p.grad[:] = 5.0
        opt = SGD([p], lr=0.1)
        opt.zero_grad()
        assert np.allclose(p.grad, 0.0)

    def test_invalid_hyperparameters(self):
        p = Parameter(np.array([1.0]))
        with pytest.raises(ValueError):
            SGD([p], lr=-1.0)
        with pytest.raises(ValueError):
            SGD([p], lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            SGD([], lr=0.1)


class TestSchedules:
    def test_constant(self):
        assert ConstantLR(0.01)(99) == 0.01

    def test_step(self):
        schedule = StepLR(0.1, step_size=10, gamma=0.1)
        assert schedule(0) == pytest.approx(0.1)
        assert schedule(10) == pytest.approx(0.01)
        assert schedule(25) == pytest.approx(0.001)

    def test_cosine_endpoints(self):
        schedule = CosineLR(0.1, total_rounds=100, min_lr=0.0)
        assert schedule(0) == pytest.approx(0.1)
        assert schedule(100) == pytest.approx(0.0, abs=1e-12)
        assert 0.0 < schedule(50) < 0.1
