"""Slimmable-architecture tests: specs, building, pruned variants, profiling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn.losses import CrossEntropyLoss
from repro.nn.models import (
    SlimmableMobileNetV2,
    SlimmableResNet18,
    SlimmableSimpleCNN,
    SlimmableVGG,
    available_architectures,
    create_architecture,
    register_architecture,
    resolve_group_sizes,
    scaled_size,
)
from repro.nn.models.spec import ChannelGroup
from repro.perf.flops import count_flops, count_params

ARCHITECTURES = {
    "simple_cnn": lambda: SlimmableSimpleCNN(num_classes=4, input_shape=(1, 8, 8), width_multiplier=0.5, hidden_features=16),
    "vgg11": lambda: SlimmableVGG(config="vgg11", num_classes=4, input_shape=(3, 32, 32), width_multiplier=0.1, classifier_widths=(8, 8)),
    "resnet18": lambda: SlimmableResNet18(num_classes=4, input_shape=(3, 16, 16), width_multiplier=0.125),
    "mobilenetv2": lambda: SlimmableMobileNetV2(num_classes=4, input_shape=(1, 16, 16), width_multiplier=0.25, stem_channels=8, head_channels=16),
}


class TestSpecHelpers:
    def test_scaled_size_floor_with_minimum(self):
        assert scaled_size(10, 0.66) == 6
        assert scaled_size(1, 0.1) == 1
        with pytest.raises(ValueError):
            scaled_size(10, 0.0)

    def test_resolve_group_sizes_prunes_only_beyond_start_layer(self):
        groups = [ChannelGroup("a", 8, 1), ChannelGroup("b", 8, 2), ChannelGroup("c", 8, 3)]
        sizes = resolve_group_sizes(groups, 0.5, start_layer=2)
        assert sizes == {"a": 8, "b": 8, "c": 4}

    def test_full_ratio_keeps_everything(self):
        groups = [ChannelGroup("a", 8, 1)]
        assert resolve_group_sizes(groups, 1.0, start_layer=0) == {"a": 8}

    def test_channel_group_validation(self):
        with pytest.raises(ValueError):
            ChannelGroup("bad", 0, 1)
        with pytest.raises(ValueError):
            ChannelGroup("bad", 4, 0, prunable=True)


@pytest.mark.parametrize("name", sorted(ARCHITECTURES))
class TestArchitectures:
    def test_full_build_forward_backward(self, name):
        arch = ARCHITECTURES[name]()
        model = arch.build(rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(3, *arch.input_shape))
        y = np.random.default_rng(2).integers(0, arch.num_classes, size=3)
        logits = model(x)
        assert logits.shape == (3, arch.num_classes)
        loss_fn = CrossEntropyLoss()
        loss_fn(logits, y)
        grad_in = model.backward(loss_fn.backward())
        assert grad_in.shape == x.shape
        assert np.isfinite(grad_in).all()

    def test_parameter_count_matches_built_model(self, name):
        arch = ARCHITECTURES[name]()
        assert arch.parameter_count() == count_params(arch.build())

    def test_pruned_build_is_smaller_and_runs(self, name):
        arch = ARCHITECTURES[name]()
        start = max(1, arch.num_prunable_layers() // 2)
        sizes = arch.group_sizes_for(0.5, start)
        model = arch.build(sizes, rng=np.random.default_rng(0))
        assert count_params(model) < arch.parameter_count()
        assert arch.parameter_count(sizes) == count_params(model)
        x = np.random.default_rng(1).normal(size=(2, *arch.input_shape))
        assert model(x).shape == (2, arch.num_classes)

    def test_param_specs_cover_every_state_entry(self, name):
        arch = ARCHITECTURES[name]()
        model = arch.build()
        spec_names = {spec.name for spec in arch.param_specs()}
        assert spec_names == set(model.state_dict().keys())

    def test_flops_decrease_with_pruning(self, name):
        arch = ARCHITECTURES[name]()
        full = count_flops(arch.build(), arch.input_shape).flops
        sizes = arch.group_sizes_for(0.5, 1)
        pruned = count_flops(arch.build(sizes), arch.input_shape).flops
        assert 0 < pruned < full

    @settings(max_examples=5, deadline=None)
    @given(ratio=st.sampled_from([0.25, 0.4, 0.66, 0.8]))
    def test_group_sizes_monotone_in_ratio(self, name, ratio):
        arch = ARCHITECTURES[name]()
        start = 1
        smaller = arch.group_sizes_for(ratio, start)
        larger = arch.group_sizes_for(min(1.0, ratio + 0.2), start)
        assert all(smaller[key] <= larger[key] for key in smaller)
        assert arch.parameter_count(smaller) <= arch.parameter_count(larger)


class TestVGGTable1:
    """The headline static reproduction: Table 1 of the paper."""

    @pytest.fixture(scope="class")
    def vgg16(self):
        return SlimmableVGG(config="vgg16", num_classes=10, input_shape=(3, 32, 32))

    def test_full_model_parameters_match_paper(self, vgg16):
        assert vgg16.parameter_count() / 1e6 == pytest.approx(33.65, abs=0.05)

    def test_full_model_flops_match_paper(self, vgg16):
        flops = count_flops(vgg16.build(), (3, 32, 32)).flops
        assert flops / 1e6 == pytest.approx(333.22, rel=0.02)

    @pytest.mark.parametrize(
        "ratio, start_layer, expected_params_m",
        [
            (0.66, 8, 16.81),
            (0.66, 6, 15.41),
            (0.66, 4, 14.84),
            (0.40, 8, 8.39),
            (0.40, 6, 6.48),
            (0.40, 4, 5.67),
        ],
    )
    def test_split_sizes_match_paper(self, vgg16, ratio, start_layer, expected_params_m):
        sizes = vgg16.group_sizes_for(ratio, start_layer)
        assert vgg16.parameter_count(sizes) / 1e6 == pytest.approx(expected_params_m, abs=0.05)


class TestResNetSpecifics:
    def test_projection_blocks_present(self):
        arch = ARCHITECTURES["resnet18"]()
        model = arch.build()
        projections = [block for block in model.blocks if block.use_projection]
        assert len(projections) == 3  # first block of stages 2, 3, 4

    def test_slice_shortcut_handles_mismatched_blocks(self):
        arch = ARCHITECTURES["resnet18"]()
        # prune only the deepest blocks: earlier blocks stay full, creating
        # channel mismatches on identity shortcuts that must be handled.
        sizes = arch.group_sizes_for(0.5, arch.num_prunable_layers() - 2)
        model = arch.build(sizes, rng=np.random.default_rng(0))
        x = np.random.default_rng(1).normal(size=(2, *arch.input_shape))
        out = model(x)
        assert out.shape == (2, arch.num_classes)
        grad = model.backward(np.ones_like(out) / out.size)
        assert grad.shape == x.shape


class TestRegistry:
    def test_available_architectures(self):
        names = available_architectures()
        assert {"vgg16", "vgg11", "resnet18", "mobilenetv2", "simple_cnn"} <= set(names)

    def test_create_architecture(self):
        arch = create_architecture("simple_cnn", num_classes=3, input_shape=(1, 8, 8))
        assert arch.num_classes == 3

    def test_unknown_name_raises(self):
        with pytest.raises(KeyError):
            create_architecture("alexnet")

    def test_register_duplicate_raises(self):
        with pytest.raises(ValueError):
            register_architecture("vgg16", lambda **kw: None)
