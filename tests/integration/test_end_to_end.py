"""End-to-end integration tests across the whole stack.

These exercise dataset synthesis -> partitioning -> device modelling ->
federated training -> evaluation for AdaptiveFL and the baselines, checking
learning actually happens and the core qualitative claims hold on a small,
easy task.
"""

import numpy as np
import pytest

from repro.core.config import AdaptiveFLConfig, FederatedConfig, LocalTrainingConfig
from repro.core.server import AdaptiveFL
from repro.baselines import HeteroFL
from repro.data.partition import iid_partition
from repro.devices.resources import ResourceModel
from repro.devices.testbed import TestbedSimulator

# ``easy_setup`` comes session-scoped from tests/conftest.py and is shared
# with the engine parity suite.


def make_configs(pool_config, rounds=8):
    federated = FederatedConfig(num_rounds=rounds, clients_per_round=4, eval_every=4)
    local = LocalTrainingConfig(local_epochs=1, batch_size=25)
    return federated, local, AdaptiveFLConfig(federated=federated, local=local, pool=pool_config)


class TestLearningHappens:
    def test_adaptivefl_learns_above_chance(self, easy_setup):
        federated, local, adaptive = make_configs(easy_setup["pool"])
        algorithm = AdaptiveFL(
            architecture=easy_setup["arch"],
            train_dataset=easy_setup["train"],
            partition=easy_setup["partition"],
            test_dataset=easy_setup["test"],
            profiles=easy_setup["profiles"],
            resource_model=easy_setup["resource_model"],
            algorithm_config=adaptive,
            seed=0,
        )
        history = algorithm.run()
        chance = 1.0 / easy_setup["arch"].num_classes
        assert history.final_accuracy("full") > chance + 0.15
        assert history.final_accuracy("avg") > chance + 0.10

    def test_accuracy_improves_over_training(self, easy_setup):
        federated, local, adaptive = make_configs(easy_setup["pool"], rounds=8)
        algorithm = AdaptiveFL(
            architecture=easy_setup["arch"],
            train_dataset=easy_setup["train"],
            partition=easy_setup["partition"],
            test_dataset=easy_setup["test"],
            profiles=easy_setup["profiles"],
            resource_model=easy_setup["resource_model"],
            algorithm_config=adaptive,
            seed=1,
        )
        history = algorithm.run()
        rounds, values = history.accuracy_curve("full")
        assert values[-1] >= values[0] - 0.05  # no catastrophic collapse
        assert max(values) > 1.0 / easy_setup["arch"].num_classes + 0.1

    def test_heterofl_baseline_learns_on_same_setup(self, easy_setup):
        federated, local, _ = make_configs(easy_setup["pool"])
        algorithm = HeteroFL(
            architecture=easy_setup["arch"],
            train_dataset=easy_setup["train"],
            partition=easy_setup["partition"],
            test_dataset=easy_setup["test"],
            profiles=easy_setup["profiles"],
            federated_config=federated,
            local_config=local,
            resource_model=easy_setup["resource_model"],
            seed=0,
        )
        history = algorithm.run()
        assert history.final_accuracy("full") > 1.0 / easy_setup["arch"].num_classes + 0.1


class TestSubmodelConsistency:
    def test_level_heads_all_learn(self, easy_setup):
        """Every level head (S/M/L) sliced from the trained global model must be
        above chance — the knowledge-sharing property of heterogeneous
        aggregation (Figure 3's qualitative claim)."""
        federated, local, adaptive = make_configs(easy_setup["pool"], rounds=10)
        algorithm = AdaptiveFL(
            architecture=easy_setup["arch"],
            train_dataset=easy_setup["train"],
            partition=easy_setup["partition"],
            test_dataset=easy_setup["test"],
            profiles=easy_setup["profiles"],
            resource_model=easy_setup["resource_model"],
            algorithm_config=adaptive,
            seed=2,
        )
        history = algorithm.run()
        final = history.evaluated_records()[-1]
        chance = 1.0 / easy_setup["arch"].num_classes
        for level, accuracy in final.level_accuracies.items():
            assert accuracy > chance, f"level {level} did not learn"


class TestTestbedIntegration:
    def test_wall_clock_is_recorded_and_increasing(self, easy_setup):
        testbed = TestbedSimulator()
        profiles = testbed.build_profiles(np.random.default_rng(0))
        # the test-bed has 17 devices; re-partition the data accordingly
        partition = iid_partition(easy_setup["train"], 17, np.random.default_rng(0))
        resource_model = ResourceModel(profiles, easy_setup["arch"].parameter_count(), uncertainty=0.1, seed=0)
        federated = FederatedConfig(num_rounds=2, clients_per_round=5, eval_every=2)
        local = LocalTrainingConfig(local_epochs=1, batch_size=20, max_batches_per_epoch=2)
        adaptive = AdaptiveFLConfig(federated=federated, local=local, pool=easy_setup["pool"])
        algorithm = AdaptiveFL(
            architecture=easy_setup["arch"],
            train_dataset=easy_setup["train"],
            partition=partition,
            test_dataset=easy_setup["test"],
            profiles=profiles,
            resource_model=resource_model,
            algorithm_config=adaptive,
            testbed=testbed,
            seed=0,
        )
        history = algorithm.run()
        seconds, accuracies = history.time_curve("full")
        assert all(record.wall_clock_seconds > 0 for record in history.records)
        assert seconds == sorted(seconds)
        assert len(accuracies) >= 1


class TestDeterminism:
    def test_full_pipeline_reproducible(self, easy_setup):
        results = []
        for _ in range(2):
            federated, local, adaptive = make_configs(easy_setup["pool"], rounds=3)
            algorithm = AdaptiveFL(
                architecture=easy_setup["arch"],
                train_dataset=easy_setup["train"],
                partition=easy_setup["partition"],
                test_dataset=easy_setup["test"],
                profiles=easy_setup["profiles"],
                resource_model=easy_setup["resource_model"],
                algorithm_config=adaptive,
                seed=42,
            )
            history = algorithm.run()
            results.append(history.final_accuracy("full"))
        assert results[0] == pytest.approx(results[1])
