"""CLI wiring of the ``repro serve`` / ``repro client`` subcommands."""

import pytest

from repro.api.cli import build_parser, main


def test_serve_parser_defaults():
    args = build_parser().parse_args(["serve", "--algorithm", "adaptivefl"])
    assert args.command == "serve"
    assert args.host == "127.0.0.1"
    assert args.port == 7733
    assert args.expect_clients == 1
    assert args.straggler_timeout == 60.0
    assert args.heartbeat_interval == 10.0
    assert args.liveness_timeout == 120.0
    # the full setting/run surface rides along
    assert args.dataset == "cifar10"
    assert args.transport == "delta"
    assert args.output_dir is not None


def test_client_parser_defaults():
    args = build_parser().parse_args(["client", "--port", "7733", "--name", "w0"])
    assert args.command == "client"
    assert args.host == "127.0.0.1"
    assert args.reconnect_attempts == 10
    assert args.drop_after is None
    assert args.quiet is False


def test_client_requires_port_and_name(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args(["client", "--name", "w0"])
    capsys.readouterr()
    with pytest.raises(SystemExit):
        build_parser().parse_args(["client", "--port", "7733"])
    capsys.readouterr()


def test_client_connect_refused_exits_nonzero():
    # port 1 on loopback: connection refused immediately, no retries wanted
    code = main(
        [
            "client",
            "--host",
            "127.0.0.1",
            "--port",
            "1",
            "--name",
            "w0",
            "--reconnect-attempts",
            "0",
            "--quiet",
        ]
    )
    assert code == 1


def test_executor_flag_accepts_remote():
    args = build_parser().parse_args(["run", "--algorithm", "adaptivefl", "--executor", "remote"])
    assert args.executor == "remote"