"""Framing codec: round-trips, size caps and truncation behaviour."""

import pickle
import socket
import struct

import pytest

from repro.serve.codec import (
    MAX_FRAME_BYTES,
    CodecError,
    FrameTooLarge,
    decode_body,
    encode_frame,
    recv_message,
    send_message,
)
from repro.serve.protocol import Heartbeat, Hello, TaskDispatch, WeightSlice


@pytest.fixture()
def sock_pair():
    left, right = socket.socketpair()
    left.settimeout(5)
    right.settimeout(5)
    yield left, right
    left.close()
    right.close()


MESSAGES = [
    Hello(client_name="w0", protocol_version=1, schema_version=1),
    Heartbeat(seq=41),
    TaskDispatch(batch_id=3, task_index=1, payload=b"\x00\x01binary\xff"),
    WeightSlice(store_id="global-0", version=2, payload=pickle.dumps({"w": [1.0, 2.0]})),
]


@pytest.mark.parametrize("message", MESSAGES, ids=lambda m: type(m).type)
def test_frame_roundtrip(message):
    frame = encode_frame(message)
    (length,) = struct.unpack(">I", frame[:4])
    assert length == len(frame) - 4
    assert decode_body(frame[4:]) == message


@pytest.mark.parametrize("message", MESSAGES, ids=lambda m: type(m).type)
def test_socket_roundtrip(sock_pair, message):
    left, right = sock_pair
    send_message(left, message)
    assert recv_message(right) == message


def test_multiple_frames_in_sequence(sock_pair):
    left, right = sock_pair
    for seq in range(5):
        send_message(left, Heartbeat(seq=seq))
    for seq in range(5):
        assert recv_message(right) == Heartbeat(seq=seq)


def test_clean_eof_returns_none(sock_pair):
    left, right = sock_pair
    left.close()
    assert recv_message(right) is None


def test_eof_mid_frame_raises(sock_pair):
    left, right = sock_pair
    frame = encode_frame(Heartbeat(seq=1))
    left.sendall(frame[: len(frame) - 2])  # header + truncated body
    left.close()
    with pytest.raises(CodecError, match="mid-frame"):
        recv_message(right)


def test_oversized_header_rejected_without_allocating(sock_pair):
    left, right = sock_pair
    left.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
    with pytest.raises(FrameTooLarge):
        recv_message(right)


def test_non_message_pickle_rejected():
    with pytest.raises(CodecError, match="not a registered message"):
        decode_body(pickle.dumps({"type": "hello"}))


def test_garbage_body_rejected():
    with pytest.raises(CodecError, match="failed to unpickle"):
        decode_body(b"\x00garbage that is not a pickle")