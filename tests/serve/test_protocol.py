"""Message registry and version-gating behaviour of the wire protocol."""

from dataclasses import FrozenInstanceError, dataclass
from typing import ClassVar

import pytest

from repro.serve import protocol
from repro.serve.protocol import (
    MESSAGE_TYPES,
    PROTOCOL_VERSION,
    SCHEMA_VERSION,
    Heartbeat,
    Hello,
    Message,
    TaskResult,
    register_message,
)

EXPECTED_WIRE_NAMES = {
    "hello",
    "hello_ack",
    "round_plan",
    "task_dispatch",
    "state_request",
    "weight_slice",
    "state_delta",
    "encoded_delta",
    "heartbeat",
    "bye",
    "error",
}


def test_registry_contains_exactly_the_documented_vocabulary():
    assert set(MESSAGE_TYPES) == EXPECTED_WIRE_NAMES


def test_every_registered_class_roundtrips_its_wire_name():
    for wire_name, cls in MESSAGE_TYPES.items():
        assert cls.type == wire_name
        assert issubclass(cls, Message)


def test_task_result_travels_as_state_delta():
    """The upload frame keeps the paper-facing wire name."""
    assert TaskResult.type == "state_delta"


def test_versions_are_positive_integers():
    assert isinstance(PROTOCOL_VERSION, int) and PROTOCOL_VERSION >= 1
    assert isinstance(SCHEMA_VERSION, int) and SCHEMA_VERSION >= 1


def test_duplicate_registration_rejected():
    @dataclass(frozen=True)
    class Impostor(Message):
        type: ClassVar[str] = "heartbeat"

    with pytest.raises(ValueError, match="duplicate"):
        register_message(Impostor)
    # the registry still resolves to the original class
    assert MESSAGE_TYPES["heartbeat"] is Heartbeat


def test_messages_are_immutable():
    hello = Hello(client_name="w0", protocol_version=1, schema_version=1)
    with pytest.raises(FrozenInstanceError):
        hello.client_name = "other"


def test_module_documents_every_wire_name():
    """The protocol table in the module docstring stays complete."""
    for wire_name in EXPECTED_WIRE_NAMES:
        assert f"``{wire_name}``" in protocol.__doc__