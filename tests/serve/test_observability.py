"""Fleet observability: stats back-compat, RTT, schema negotiation, traces.

These tests pin the telemetry half of the serve stack — everything
``repro.obs`` added on top of the wire protocol — against real loopback
sockets, mirroring the harness of ``test_coordinator.py``.
"""

import json
import socket
import time
import urllib.request

from repro.engine.tasks import LocalRoundTask  # noqa: F401 - asserts importability of the trace field
from repro.obs.events import get_event_bus
from repro.obs.sinks import RingBufferSink
from repro.obs.trace import TraceContext
from repro.serve.codec import recv_message, send_message
from repro.serve.coordinator import STAT_KEYS
from repro.serve.protocol import (
    MIN_SCHEMA_VERSION,
    PROTOCOL_VERSION,
    SCHEMA_VERSION,
    Hello,
    HelloAck,
    ProtocolError,
)

from test_coordinator import ClientThread, EchoTask, make_executor


class TracedEchoTask(EchoTask):
    """EchoTask carrying telemetry identity, like engine tasks do."""

    def __init__(self, n: int, trace: TraceContext):
        super().__init__(n)
        self.trace = trace


class TestStatsBackCompat:
    def test_stats_dict_keeps_the_legacy_keys_and_int_values(self):
        executor = make_executor(min_clients=1)
        host, port = executor.start()
        client = ClientThread(host, port, "w0")
        try:
            assert executor.map([EchoTask(3)]) == [6]
            stats = executor.stats()
            assert set(stats) == set(STAT_KEYS)
            assert all(isinstance(value, int) for value in stats.values())
            assert stats["connects"] == 1
            assert stats["dispatched"] >= 1
            assert stats["results"] >= 1
        finally:
            executor.shutdown()
            client.join()

    def test_counters_expose_with_total_suffix(self):
        executor = make_executor(min_clients=1)
        host, port = executor.start()
        client = ClientThread(host, port, "w0")
        try:
            executor.map([EchoTask(1)])
            coordinator = executor._coordinator
            assert coordinator is not None
            exposition = coordinator.metrics.render()
            for key in STAT_KEYS:
                assert f"# TYPE {key}_total counter" in exposition
            assert "# TYPE tasks_inflight gauge" in exposition
            assert "# TYPE heartbeat_rtt_seconds histogram" in exposition
            assert "# TYPE bytes_up_total counter" in exposition
            assert "# TYPE bytes_down_total counter" in exposition
        finally:
            executor.shutdown()
            client.join()


class TestHeartbeatRtt:
    def test_heartbeat_echoes_are_observed_as_rtt(self):
        executor = make_executor(min_clients=1, heartbeat_interval=0.2)
        host, port = executor.start()
        client = ClientThread(host, port, "w0")
        try:
            executor.map([EchoTask(1)])  # ensure the actor is live
            coordinator = executor._coordinator
            assert coordinator is not None
            deadline = time.monotonic() + 10
            while coordinator.heartbeat_rtt.calls == 0 and time.monotonic() < deadline:
                time.sleep(0.05)
            assert coordinator.heartbeat_rtt.calls >= 1
            # loopback RTTs are real durations: positive, well under a second
            assert 0 < coordinator.heartbeat_rtt.total < coordinator.heartbeat_rtt.calls * 1.0
        finally:
            executor.shutdown()
            client.join()


class TestSchemaNegotiation:
    def _handshake(self, host, port, schema_version):
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.settimeout(5)
            send_message(
                sock,
                Hello(client_name="probe", protocol_version=PROTOCOL_VERSION, schema_version=schema_version),
            )
            return recv_message(sock)

    def test_older_schema_peer_is_accepted_at_its_level(self):
        executor = make_executor()
        host, port = executor.start()
        try:
            reply = self._handshake(host, port, MIN_SCHEMA_VERSION)
            assert isinstance(reply, HelloAck)
            assert reply.schema_version == MIN_SCHEMA_VERSION
        finally:
            executor.shutdown()

    def test_current_schema_peer_gets_the_current_schema(self):
        executor = make_executor()
        host, port = executor.start()
        try:
            reply = self._handshake(host, port, SCHEMA_VERSION)
            assert isinstance(reply, HelloAck)
            assert reply.schema_version == SCHEMA_VERSION
        finally:
            executor.shutdown()

    def test_future_schema_peer_is_rejected(self):
        executor = make_executor()
        host, port = executor.start()
        try:
            reply = self._handshake(host, port, SCHEMA_VERSION + 1)
            assert isinstance(reply, ProtocolError)
            assert "schema version mismatch" in reply.message
            assert executor.stats()["connects"] == 0
        finally:
            executor.shutdown()


class TestTracePropagation:
    def test_trace_ids_ride_the_wire_into_client_event_logs(self, tmp_path):
        ring = RingBufferSink(capacity=64)
        get_event_bus().attach(ring)
        executor = make_executor(min_clients=1)
        host, port = executor.start()
        event_log = tmp_path / "worker.jsonl"
        client = ClientThread(host, port, "w0", event_log=str(event_log))
        try:
            traces = [TraceContext(trace_id="test-r0#000042", span_id=f"s{i:06d}") for i in range(3)]
            tasks = [TracedEchoTask(i, traces[i]) for i in range(3)]
            assert executor.map(tasks) == [0, 2, 4]
        finally:
            executor.shutdown()
            client.join()
            get_event_bus().detach(ring)

        # server side: dispatch and result events carry the task's identity
        server_events = {
            (event.type, event.span_id)
            for event in ring.events()
            if event.trace_id == "test-r0#000042"
        }
        for trace in traces:
            assert ("task_dispatch", trace.span_id) in server_events
            assert ("task_result", trace.span_id) in server_events

        # client side: the private log has start/upload under the same ids
        client_events = [json.loads(line) for line in event_log.read_text(encoding="utf-8").splitlines()]
        assert all(event["source"] == "w0" for event in client_events)
        client_spans = {(event["type"], event["span_id"]) for event in client_events}
        for trace in traces:
            assert ("task_start", trace.span_id) in client_spans
            assert ("task_upload", trace.span_id) in client_spans


class TestStatusEndpoint:
    def test_serve_status_endpoint_exposes_fleet_metrics(self):
        executor = make_executor(min_clients=1, status_port=0)
        host, port = executor.start()
        client = ClientThread(host, port, "w0")
        try:
            executor.map([EchoTask(2)])
            status = executor.status_address
            assert status is not None
            with urllib.request.urlopen(f"http://{status[0]}:{status[1]}/metrics", timeout=5) as response:
                body = response.read().decode("utf-8")
            assert "dispatched_total" in body
            assert "bytes_up_total" in body
        finally:
            executor.shutdown()
            client.join()
        assert executor.status_address is None  # endpoint dies with the fleet
