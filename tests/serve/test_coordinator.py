"""Coordinator behaviour over real loopback sockets (threaded client runners).

Everything here runs in one process: the ``RemoteExecutor`` hosts the
asyncio coordinator on its background thread, and ``ClientRunner``
instances serve it from plain Python threads — real sockets, no
subprocesses, so the tests stay fast and debuggable.
"""

import socket
import threading
import time

import pytest

from repro.serve.client import ClientRunner
from repro.serve.codec import recv_message, send_message
from repro.serve.executor import RemoteExecutor
from repro.serve.options import ServeOptions
from repro.serve.protocol import PROTOCOL_VERSION, SCHEMA_VERSION, Hello, HelloAck, ProtocolError


class EchoTask:
    """Returns a function of its payload (picklable, deterministic)."""

    def __init__(self, n: int):
        self.n = n

    def run(self) -> int:
        return self.n * 2


class FailingTask:
    def run(self):
        raise ValueError("boom from the client side")


class SleepyTask:
    """Deterministic result, tunable wall-clock (straggler simulation)."""

    def __init__(self, n: int, delay: float):
        self.n = n
        self.delay = delay

    def run(self) -> int:
        time.sleep(self.delay)
        return self.n


def make_executor(**overrides) -> RemoteExecutor:
    defaults = dict(
        port=0,
        min_clients=1,
        connect_timeout=15.0,
        straggler_timeout=30.0,
        heartbeat_interval=0.5,
        liveness_timeout=15.0,
    )
    defaults.update(overrides)
    return RemoteExecutor(options=ServeOptions(**defaults))


class ClientThread:
    """A ClientRunner on a thread, capturing its exit code."""

    def __init__(self, host: str, port: int, name: str, **kwargs):
        kwargs.setdefault("quiet", True)
        kwargs.setdefault("backoff_base", 0.05)
        self.runner = ClientRunner(host, port, name, **kwargs)
        self.exit_code: int | None = None
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()

    def _run(self) -> None:
        self.exit_code = self.runner.run()

    def join(self, timeout: float = 10.0) -> None:
        self.thread.join(timeout)
        assert not self.thread.is_alive(), "client thread did not exit"


@pytest.fixture()
def fleet():
    """A started executor with two connected client threads."""
    executor = make_executor(min_clients=2)
    host, port = executor.start()
    clients = [ClientThread(host, port, f"w{i}") for i in range(2)]
    try:
        yield executor, clients
    finally:
        executor.shutdown()
        for client in clients:
            client.thread.join(timeout=10)


def test_map_preserves_submission_order(fleet):
    executor, _ = fleet
    for _ in range(3):
        assert executor.map([EchoTask(n) for n in range(7)]) == [n * 2 for n in range(7)]


def test_empty_batch_is_a_noop(fleet):
    executor, _ = fleet
    assert executor.map([]) == []


def test_client_side_exception_fails_the_batch_with_traceback(fleet):
    executor, _ = fleet
    with pytest.raises(RuntimeError, match="boom from the client side"):
        executor.map([EchoTask(0), FailingTask(), EchoTask(2)])
    # the fleet survives a failed batch
    assert executor.map([EchoTask(5)]) == [10]


def test_straggler_is_requeued_to_another_client():
    executor = make_executor(min_clients=2, straggler_timeout=0.4)
    host, port = executor.start()
    clients = [ClientThread(host, port, f"w{i}") for i in range(2)]
    try:
        # one slow task: its first dispatch times out and a second client
        # rescues it; the slow original upload is then a counted duplicate
        assert executor.map([SleepyTask(7, delay=1.2)]) == [7]
        stats = executor.stats()
        assert stats["requeues"] >= 1, stats
    finally:
        executor.shutdown()
        for client in clients:
            client.join()


def test_shutdown_sends_bye_and_clients_exit_zero(fleet):
    executor, clients = fleet
    assert executor.map([EchoTask(1)]) == [2]
    executor.shutdown()
    for client in clients:
        client.join()
        assert client.exit_code == 0


def test_quorum_timeout_raises_without_clients():
    executor = make_executor(min_clients=1, connect_timeout=0.4)
    executor.start()
    try:
        with pytest.raises(RuntimeError, match="only 0 connected"):
            executor.map([EchoTask(1)])
    finally:
        executor.shutdown()


def test_version_mismatch_is_rejected_before_any_task():
    executor = make_executor()
    host, port = executor.start()
    try:
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.settimeout(5)
            send_message(
                sock,
                Hello(client_name="fossil", protocol_version=PROTOCOL_VERSION + 1, schema_version=SCHEMA_VERSION),
            )
            reply = recv_message(sock)
        assert isinstance(reply, ProtocolError)
        assert "version mismatch" in reply.message
        assert executor.stats()["connects"] == 0
    finally:
        executor.shutdown()


def test_reconnect_under_the_same_name_is_resumed():
    executor = make_executor()
    host, port = executor.start()

    def handshake() -> HelloAck:
        with socket.create_connection((host, port), timeout=5) as sock:
            sock.settimeout(5)
            send_message(
                sock,
                Hello(client_name="phoenix", protocol_version=PROTOCOL_VERSION, schema_version=SCHEMA_VERSION),
            )
            reply = recv_message(sock)
        assert isinstance(reply, HelloAck)
        return reply

    try:
        first = handshake()
        assert first.resumed is False
        deadline = time.monotonic() + 5
        while executor.stats()["connects"] < 1 and time.monotonic() < deadline:
            time.sleep(0.01)
        second = handshake()
        assert second.resumed is True
        stats = executor.stats()
        assert stats["connects"] == 1
        assert stats["reconnects"] == 1
    finally:
        executor.shutdown()


def test_actor_send_queues_are_bounded(fleet):
    executor, _ = fleet
    executor.map([EchoTask(1)])  # ensure both actors registered
    coordinator = executor._coordinator
    assert coordinator is not None and len(coordinator.actors) == 2
    for actor in coordinator.actors.values():
        assert actor.send_queue.maxsize == executor.options.send_queue_size


def test_executor_registered_in_factory():
    from repro.engine.factory import EXECUTOR_NAMES, EXECUTORS

    assert "remote" in EXECUTOR_NAMES
    assert EXECUTORS["remote"] is RemoteExecutor
    assert RemoteExecutor.is_interprocess is True