"""Vectorized fleet engine vs the legacy event engine: bit-parity.

The vectorized engine must be a drop-in replacement: for a fixed
``draw_mode`` every :class:`RoundOutcome` field, every battery trajectory
and every end-to-end training history is **bit-identical** between
``engine="legacy"`` and ``engine="vectorized"`` — on static fleets,
stochastic fleets (markov availability + jitter + dropouts + batteries +
deadlines) and gated (``server_concurrency``) fleets alike.
"""

import numpy as np
import pytest

from repro.sim.fleet import ClientDispatch, DispatchBatch, FleetSimulator
from repro.sim.scenario import (
    AvailabilitySpec,
    BatterySpec,
    DeviceTemplate,
    NetworkSpec,
    ScenarioSpec,
)

DRAW_MODES = ["per-client", "batched"]


def stochastic_spec(**overrides):
    """Every dynamic subsystem on at once: the hardest parity target."""
    kwargs = dict(
        name="engine-parity",
        devices=(
            DeviceTemplate(
                name="weak", device_class="weak", flops_per_second=5e5, bandwidth_mbps=4.0,
                fraction=0.5, compute_jitter=0.2, link_latency_s=0.05, link_jitter_s=0.02,
            ),
            DeviceTemplate(
                name="strong", device_class="strong", flops_per_second=2e6, bandwidth_mbps=20.0,
                fraction=0.5, compute_jitter=0.1, link_latency_s=0.01, link_jitter_s=0.01,
            ),
        ),
        availability=AvailabilitySpec(kind="markov", p_drop=0.2, p_join=0.7),
        battery=BatterySpec(capacity_joules=600.0, compute_watts=2.0, recharge_watts=5.0),
        dropout_rate=0.15,
        deadline_factor=2.0,
    )
    kwargs.update(overrides)
    return ScenarioSpec(**kwargs)


def dispatches_for(clients, params=40_000, flops=20_000, samples=60, epochs=2):
    return [
        ClientDispatch(
            client_id=client, params_down=params, params_up=params // 2,
            flops_per_sample=flops, num_samples=samples, local_epochs=epochs,
        )
        for client in clients
    ]


def outcomes_equal(left, right):
    """Field-by-field bit equality of two RoundOutcomes."""
    assert left.round_index == right.round_index
    assert left.deadline_seconds == right.deadline_seconds
    assert left.round_seconds == right.round_seconds
    assert len(left.clients) == len(right.clients)
    for a, b in zip(left.clients, right.clients):
        for field in (
            "client_id", "bytes_down", "bytes_up", "finish_seconds",
            "dropped", "aggregated", "compute_seconds", "failure_seconds",
        ):
            assert getattr(a, field) == getattr(b, field), field


def run_rounds(fleet, num_rounds=6, k=8):
    """Simulate ``num_rounds`` rounds over whichever clients are reachable."""
    outcomes = []
    for round_index in range(num_rounds):
        clients = fleet.available_clients(round_index)[:k]
        outcomes.append(fleet.simulate_round(round_index, dispatches_for(clients)))
    return outcomes


class TestRoundOutcomeParity:
    @pytest.mark.parametrize("draw_mode", DRAW_MODES)
    def test_stochastic_rounds_bit_identical(self, draw_mode):
        legacy = FleetSimulator(stochastic_spec(), num_clients=24, seed=7, engine="legacy", draw_mode=draw_mode)
        vector = FleetSimulator(stochastic_spec(), num_clients=24, seed=7, engine="vectorized", draw_mode=draw_mode)
        for left, right in zip(run_rounds(legacy), run_rounds(vector)):
            outcomes_equal(left, right)
        # battery trajectories advanced identically
        assert np.array_equal(legacy.state_dict()["charge"], vector.state_dict()["charge"])
        assert legacy.state_dict()["recovering"] == vector.state_dict()["recovering"]

    @pytest.mark.parametrize("draw_mode", DRAW_MODES)
    def test_gated_network_bit_identical(self, draw_mode):
        spec = stochastic_spec(network=NetworkSpec(server_concurrency=2), deadline_factor=None)
        legacy = FleetSimulator(spec, num_clients=16, seed=3, engine="legacy", draw_mode=draw_mode)
        vector = FleetSimulator(spec, num_clients=16, seed=3, engine="vectorized", draw_mode=draw_mode)
        for left, right in zip(run_rounds(legacy), run_rounds(vector)):
            outcomes_equal(left, right)

    def test_fixed_deadline_and_empty_rounds(self):
        spec = stochastic_spec(deadline_factor=None, deadline_seconds=30.0)
        legacy = FleetSimulator(spec, num_clients=12, seed=5, engine="legacy")
        vector = FleetSimulator(spec, num_clients=12, seed=5, engine="vectorized")
        for round_index in range(4):
            clients = legacy.available_clients(round_index)[:5] if round_index % 2 else []
            outcomes_equal(
                legacy.simulate_round(round_index, dispatches_for(clients)),
                vector.simulate_round(round_index, dispatches_for(clients)),
            )

    def test_availability_masks_identical(self):
        legacy = FleetSimulator(stochastic_spec(), num_clients=32, seed=11, engine="legacy")
        vector = FleetSimulator(stochastic_spec(), num_clients=32, seed=11, engine="vectorized")
        for round_index in range(8):
            assert np.array_equal(legacy.available_mask(round_index), vector.available_mask(round_index))
            assert legacy.available_clients(round_index) == vector.available_clients(round_index)


class TestDrawModeThreshold:
    def test_auto_draw_mode_switches_at_threshold(self):
        from repro.sim.fleet import BATCHED_DRAW_THRESHOLD

        small = FleetSimulator(stochastic_spec(), num_clients=16, seed=0)
        assert small.engine == "vectorized" and small.draw_mode == "per-client"
        large = FleetSimulator(stochastic_spec(), num_clients=BATCHED_DRAW_THRESHOLD, seed=0)
        assert large.draw_mode == "batched"

    def test_batched_draws_deterministic_across_instances(self):
        """Satellite: generator construction is batched per (tag, round) and
        the draws are a pure function of (seed, round, client) — two fleets
        and repeated queries agree bit-for-bit."""
        first = FleetSimulator(stochastic_spec(), num_clients=40, seed=13, draw_mode="batched")
        second = FleetSimulator(stochastic_spec(), num_clients=40, seed=13, draw_mode="batched")
        ids = [3, 7, 21, 38]
        for round_index in range(3):
            a = first._dispatch_draws(round_index, ids)
            b = second._dispatch_draws(round_index, ids)
            again = first._dispatch_draws(round_index, ids)
            for attr in ("factor", "down_jitter", "up_jitter", "drop_fraction"):
                assert np.array_equal(getattr(a, attr), getattr(b, attr), equal_nan=True), attr
                assert np.array_equal(getattr(a, attr), getattr(again, attr), equal_nan=True), attr

    def test_batched_subset_matches_full_population_draws(self):
        """A dispatched subset indexes the same full-population vectors."""
        fleet = FleetSimulator(stochastic_spec(), num_clients=40, seed=13, draw_mode="batched")
        subset = fleet._dispatch_draws(2, [5, 17, 29])
        everyone = fleet._dispatch_draws(2, list(range(40)))
        for attr in ("factor", "down_jitter", "up_jitter", "drop_fraction"):
            assert np.array_equal(
                getattr(subset, attr), getattr(everyone, attr)[[5, 17, 29]], equal_nan=True
            ), attr


class TestBatchAPI:
    def test_simulate_round_batch_matches_list_api(self):
        list_fleet = FleetSimulator(stochastic_spec(), num_clients=24, seed=9, engine="vectorized")
        batch_fleet = FleetSimulator(stochastic_spec(), num_clients=24, seed=9, engine="vectorized")
        for round_index in range(4):
            clients = list_fleet.available_clients(round_index)[:8]
            dispatches = dispatches_for(clients)
            outcome = list_fleet.simulate_round(round_index, dispatches)
            batch = batch_fleet.simulate_round_batch(
                round_index, DispatchBatch.from_dispatches(dispatches)
            )
            outcomes_equal(outcome, batch.to_outcome())

    def test_dispatch_batch_round_trips(self):
        dispatches = dispatches_for([2, 5, 9])
        batch = DispatchBatch.from_dispatches(dispatches)
        assert batch.to_dispatches() == dispatches
        assert len(batch) == 3


class TestStateRoundTrip:
    @pytest.mark.parametrize("engine", ["legacy", "vectorized"])
    def test_resume_is_bit_identical(self, engine):
        reference = FleetSimulator(stochastic_spec(), num_clients=20, seed=4, engine=engine)
        run_rounds(reference, num_rounds=6)

        first = FleetSimulator(stochastic_spec(), num_clients=20, seed=4, engine=engine)
        run_rounds(first, num_rounds=3)
        resumed = FleetSimulator(stochastic_spec(), num_clients=20, seed=4, engine=engine)
        resumed.load_state_dict(first.state_dict())
        for round_index in range(3, 6):
            clients = resumed.available_clients(round_index)[:8]
            resumed.simulate_round(round_index, dispatches_for(clients))
        assert np.array_equal(reference.state_dict()["charge"], resumed.state_dict()["charge"])
        assert reference.state_dict()["recovering"] == resumed.state_dict()["recovering"]

    def test_cross_engine_state_is_interchangeable(self):
        legacy = FleetSimulator(stochastic_spec(), num_clients=20, seed=4, engine="legacy")
        run_rounds(legacy, num_rounds=3)
        vector = FleetSimulator(stochastic_spec(), num_clients=20, seed=4, engine="vectorized")
        vector.load_state_dict(legacy.state_dict())
        for round_index in range(3, 6):
            clients = vector.available_clients(round_index)[:8]
            vector.simulate_round(round_index, dispatches_for(clients))
        reference = FleetSimulator(stochastic_spec(), num_clients=20, seed=4, engine="legacy")
        run_rounds(reference, num_rounds=6)
        assert np.array_equal(reference.state_dict()["charge"], vector.state_dict()["charge"])


@pytest.fixture(scope="module")
def e2e_setup():
    """A tiny 17-client federation for end-to-end engine parity runs."""
    from repro.core.config import FederatedConfig, LocalTrainingConfig, ModelPoolConfig
    from repro.data.datasets import SyntheticTaskConfig, synthesize_classification_task
    from repro.data.partition import iid_partition
    from repro.devices.resources import ResourceModel
    from repro.devices.testbed import TestbedSimulator
    from repro.nn.models import SlimmableSimpleCNN

    arch = SlimmableSimpleCNN(num_classes=4, input_shape=(1, 8, 8), width_multiplier=0.5, hidden_features=32)
    config = SyntheticTaskConfig(
        num_classes=4, input_shape=(1, 8, 8), train_samples=510, test_samples=170,
        clusters_per_class=1, noise_std=0.35, label_noise=0.0, seed=11,
    )
    train, test = synthesize_classification_task(config)
    partition = iid_partition(train, 17, np.random.default_rng(2))
    profiles = TestbedSimulator().build_profiles()
    resource_model = ResourceModel(profiles, arch.parameter_count(), uncertainty=0.1, seed=2)
    return {
        "pool": ModelPoolConfig(models_per_level=3, start_layers=(2, 2, 1), min_start_layer=1),
        "federated": FederatedConfig(num_rounds=3, clients_per_round=5, eval_every=3),
        "local": LocalTrainingConfig(local_epochs=1, batch_size=16, max_batches_per_epoch=2),
        "kwargs": dict(
            architecture=arch, train_dataset=train, partition=partition, test_dataset=test,
            profiles=profiles, resource_model=resource_model, seed=2,
        ),
    }


class TestEndToEndParity:
    """Histories + final weights bit-identical across engines on flaky_edge."""

    def build(self, setup, cls, engine):
        from repro.core.config import AdaptiveFLConfig
        from repro.core.server import AdaptiveFL

        extra = {}
        if cls is AdaptiveFL:
            extra["algorithm_config"] = AdaptiveFLConfig(
                federated=setup["federated"], local=setup["local"], pool=setup["pool"]
            )
        return cls(
            **setup["kwargs"], pool_config=setup["pool"], federated_config=setup["federated"],
            local_config=setup["local"], scenario="flaky_edge", fleet_engine=engine, **extra,
        )

    def algorithms(self):
        from repro.baselines import HeteroFL
        from repro.core.server import AdaptiveFL

        return [AdaptiveFL, HeteroFL]

    @pytest.mark.parametrize("index", [0, 1], ids=["adaptivefl", "heterofl"])
    def test_history_and_weights_bit_identical(self, e2e_setup, index):
        cls = self.algorithms()[index]
        legacy = self.build(e2e_setup, cls, "legacy")
        vector = self.build(e2e_setup, cls, "vectorized")
        legacy_history = legacy.run()
        vector_history = vector.run()
        assert legacy_history.to_dict() == vector_history.to_dict()
        for key in legacy.global_state:
            assert np.array_equal(legacy.global_state[key], vector.global_state[key]), key


class TestPopulationStats:
    def test_counts_partition_the_fleet(self):
        fleet = FleetSimulator(stochastic_spec(), num_clients=30, seed=2)
        run_rounds(fleet, num_rounds=3)
        stats = fleet.population_stats(3)
        assert set(stats) == {"online", "recovering", "battery_dead"}
        assert stats["online"] == int(np.count_nonzero(fleet.available_mask(3)))
        assert 0 <= stats["recovering"] <= 30
        assert 0 <= stats["battery_dead"] <= 30
