"""Scenario specs: validation, strict JSON round-trips and the registry."""

import json

import pytest

from repro.sim.scenario import (
    AvailabilitySpec,
    BatterySpec,
    DeviceTemplate,
    NetworkSpec,
    ScenarioSpec,
    available_scenarios,
    get_scenario,
    register_scenario,
    unregister_scenario,
    validate_scenario_choice,
)

EXPECTED_LIBRARY = {
    "stable_lab",
    "flaky_edge",
    "diurnal",
    "congested_network",
    "battery_constrained",
    "paper_testbed",
}


def minimal_devices():
    return (DeviceTemplate(name="d", device_class="weak", flops_per_second=1e9, bandwidth_mbps=10.0, fraction=1.0),)


class TestSpecValidation:
    def test_device_needs_exactly_one_of_count_fraction(self):
        with pytest.raises(ValueError):
            DeviceTemplate(name="d", device_class="weak", flops_per_second=1e9, bandwidth_mbps=10.0)
        with pytest.raises(ValueError):
            DeviceTemplate(
                name="d", device_class="weak", flops_per_second=1e9, bandwidth_mbps=10.0, count=2, fraction=0.5
            )

    def test_device_class_checked(self):
        with pytest.raises(ValueError):
            DeviceTemplate(name="d", device_class="huge", flops_per_second=1e9, bandwidth_mbps=10.0, count=1)

    def test_availability_kind_checked(self):
        with pytest.raises(ValueError):
            AvailabilitySpec(kind="weekly")

    def test_markov_cannot_strand_everyone(self):
        with pytest.raises(ValueError):
            AvailabilitySpec(kind="markov", p_drop=0.5, p_join=0.0)

    def test_battery_fraction_ordering(self):
        with pytest.raises(ValueError):
            BatterySpec(capacity_joules=10.0, min_charge_fraction=0.5, resume_charge_fraction=0.2)

    def test_scenario_rejects_both_deadline_kinds(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", devices=minimal_devices(), deadline_seconds=1.0, deadline_factor=2.0)

    def test_scenario_rejects_mixed_count_and_fraction_templates(self):
        devices = (
            DeviceTemplate(name="a", device_class="weak", flops_per_second=1e9, bandwidth_mbps=10.0, count=2),
            DeviceTemplate(name="b", device_class="strong", flops_per_second=1e10, bandwidth_mbps=50.0, fraction=0.5),
        )
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", devices=devices)

    def test_scenario_needs_devices(self):
        with pytest.raises(ValueError):
            ScenarioSpec(name="x", devices=())


class TestSerialization:
    @pytest.mark.parametrize("name", sorted(EXPECTED_LIBRARY))
    def test_library_specs_round_trip_through_json(self, name):
        spec = get_scenario(name)
        payload = json.loads(json.dumps(spec.to_dict()))
        assert ScenarioSpec.from_dict(payload) == spec

    def test_unknown_keys_raise(self):
        payload = get_scenario("stable_lab").to_dict()
        payload["typo"] = 1
        with pytest.raises(ValueError, match="typo"):
            ScenarioSpec.from_dict(payload)

    def test_nested_unknown_keys_raise(self):
        payload = get_scenario("flaky_edge").to_dict()
        payload["availability"]["p_vanish"] = 0.5
        with pytest.raises(ValueError, match="p_vanish"):
            ScenarioSpec.from_dict(payload)

    def test_network_and_battery_round_trip(self):
        spec = get_scenario("battery_constrained")
        rebuilt = ScenarioSpec.from_dict(spec.to_dict())
        assert rebuilt.battery == spec.battery
        assert rebuilt.network == NetworkSpec()


class TestRegistry:
    def test_library_is_registered(self):
        assert EXPECTED_LIBRARY <= set(available_scenarios())

    def test_paper_testbed_is_static(self):
        assert get_scenario("paper_testbed").is_static
        assert get_scenario("stable_lab").is_static
        assert not get_scenario("flaky_edge").is_static

    def test_unknown_scenario_lists_valid_names(self):
        with pytest.raises(KeyError, match="stable_lab"):
            get_scenario("lunar_base")
        with pytest.raises(ValueError, match="lunar_base"):
            validate_scenario_choice("lunar_base")
        validate_scenario_choice(None)  # None is always fine

    def test_register_and_unregister(self):
        @register_scenario("test_only_scenario")
        def build():
            return ScenarioSpec(name="test_only_scenario", devices=minimal_devices())

        try:
            assert get_scenario("test_only_scenario").name == "test_only_scenario"
            with pytest.raises(ValueError):
                register_scenario("test_only_scenario")(lambda: None)
        finally:
            unregister_scenario("test_only_scenario")
        assert "test_only_scenario" not in available_scenarios()

    def test_factory_name_mismatch_rejected(self):
        @register_scenario("test_mismatch")
        def build():
            return ScenarioSpec(name="other", devices=minimal_devices())

        try:
            with pytest.raises(ValueError, match="other"):
                get_scenario("test_mismatch")
        finally:
            unregister_scenario("test_mismatch")
