"""Acceptance tests of the scenario layer.

* ``paper_testbed`` parity: histories (every legacy-observable field,
  including ``wall_clock_seconds``) and final weights are **bit-identical**
  to the legacy ``TestbedSimulator`` path for AdaptiveFL and all four
  baselines.
* Same-seed scenario runs are fully deterministic across the serial,
  thread and process executors.
* Deadline-based over-selection demonstrably changes round composition in
  ``flaky_edge`` and is recorded in :class:`RoundRecord`.
"""

import json

import numpy as np
import pytest

from repro.baselines import AllLargeFedAvg, DecoupledFL, HeteroFL, ScaleFL
from repro.core.config import AdaptiveFLConfig, FederatedConfig, LocalTrainingConfig, ModelPoolConfig
from repro.core.history import RoundRecord, TrainingHistory
from repro.core.server import AdaptiveFL
from repro.data.datasets import SyntheticTaskConfig, synthesize_classification_task
from repro.data.partition import iid_partition
from repro.devices.resources import ResourceModel
from repro.devices.testbed import TestbedSimulator
from repro.nn.models import SlimmableSimpleCNN

#: every legacy RoundRecord field the pre-scenario code recorded
LEGACY_FIELDS = (
    "round_index",
    "full_accuracy",
    "avg_accuracy",
    "level_accuracies",
    "train_loss",
    "communication_waste",
    "dispatched",
    "returned",
    "selected_clients",
    "wall_clock_seconds",
)


@pytest.fixture(scope="module")
def testbed_setup():
    """A 17-client federation matching the paper's test-bed device mix."""
    arch = SlimmableSimpleCNN(num_classes=4, input_shape=(1, 8, 8), width_multiplier=0.5, hidden_features=32)
    config = SyntheticTaskConfig(
        num_classes=4, input_shape=(1, 8, 8), train_samples=510, test_samples=170,
        clusters_per_class=1, noise_std=0.35, label_noise=0.0, seed=11,
    )
    train, test = synthesize_classification_task(config)
    partition = iid_partition(train, 17, np.random.default_rng(2))
    testbed = TestbedSimulator()
    profiles = testbed.build_profiles()  # identity order, matching the fleet expansion
    resource_model = ResourceModel(profiles, arch.parameter_count(), uncertainty=0.1, seed=2)
    federated = FederatedConfig(num_rounds=2, clients_per_round=5, eval_every=2)
    local = LocalTrainingConfig(local_epochs=1, batch_size=16, max_batches_per_epoch=2)
    pool = ModelPoolConfig(models_per_level=3, start_layers=(2, 2, 1), min_start_layer=1)
    return {
        "testbed": testbed,
        "pool": pool,
        "federated": federated,
        "local": local,
        "kwargs": dict(
            architecture=arch, train_dataset=train, partition=partition, test_dataset=test,
            profiles=profiles, federated_config=federated, local_config=local,
            resource_model=resource_model, seed=2,
        ),
    }


def build_pair(setup, cls):
    """The same algorithm on the legacy testbed and on the scenario fleet."""
    extra = {}
    if cls is AdaptiveFL:
        extra["algorithm_config"] = AdaptiveFLConfig(
            federated=setup["federated"], local=setup["local"], pool=setup["pool"]
        )
    legacy = cls(**setup["kwargs"], pool_config=setup["pool"], testbed=setup["testbed"], **extra)
    scenario = cls(**setup["kwargs"], pool_config=setup["pool"], scenario="paper_testbed", **extra)
    return legacy, scenario


class TestPaperTestbedParity:
    @pytest.mark.parametrize("cls", [AdaptiveFL, AllLargeFedAvg, DecoupledFL, HeteroFL, ScaleFL])
    def test_history_and_weights_bit_identical(self, testbed_setup, cls):
        legacy, scenario = build_pair(testbed_setup, cls)
        legacy_history = legacy.run()
        scenario_history = scenario.run()
        assert len(legacy_history) == len(scenario_history)
        for old, new in zip(legacy_history.records, scenario_history.records):
            for field in LEGACY_FIELDS:
                assert getattr(old, field) == getattr(new, field), field
        for key in legacy.global_state:
            assert np.array_equal(legacy.global_state[key], scenario.global_state[key]), key

    def test_scenario_run_adds_fleet_accounting(self, testbed_setup):
        _, scenario = build_pair(testbed_setup, HeteroFL)
        history = scenario.run()
        for record in history.records:
            assert len(record.arrival_seconds) == len(record.selected_clients)
            assert all(arrival is not None for arrival in record.arrival_seconds)
            assert record.dropped_clients == []  # the static test-bed never drops
            assert record.wall_clock_seconds == max(record.arrival_seconds)
            assert record.bytes_down > 0 and record.bytes_up > 0

    def test_testbed_and_scenario_together_rejected(self, testbed_setup):
        with pytest.raises(ValueError, match="not both"):
            HeteroFL(
                **testbed_setup["kwargs"],
                pool_config=testbed_setup["pool"],
                testbed=testbed_setup["testbed"],
                scenario="paper_testbed",
            )


class TestScenarioDeterminism:
    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_flaky_edge_bit_identical_across_executors(self, ci_scenario_histories, executor):
        assert ci_scenario_histories[executor] == ci_scenario_histories["serial"]

    def test_flaky_edge_rounds_exercise_the_dynamics(self, ci_scenario_histories):
        rounds = ci_scenario_histories["serial"]["rounds"]
        assert any(r["dropped_clients"] for r in rounds)
        assert all(len(r["arrival_seconds"]) == len(r["selected_clients"]) for r in rounds)


@pytest.fixture(scope="module")
def ci_scenario_histories():
    """AdaptiveFL on flaky_edge, same seed, one history per executor."""
    from repro.experiments.runner import run_algorithm
    from repro.experiments.settings import ExperimentSetting, prepare_experiment

    histories = {}
    for executor in ("serial", "thread", "process"):
        setting = ExperimentSetting(
            dataset="cifar10", model="simple_cnn", scale="ci", scenario="flaky_edge",
            executor=executor, max_workers=2, overrides={"num_rounds": 3, "eval_every": 3},
        )
        result = run_algorithm("adaptivefl", prepare_experiment(setting))
        histories[executor] = result.history.to_dict()
    return histories


class TestOverSelection:
    def test_flaky_edge_over_selection_changes_round_composition(self, ci_prepared):
        """Over-selection dispatches K+extra and the deadline prunes arrivals."""
        from repro.experiments.runner import run_algorithm

        baseline = run_algorithm("heterofl", ci_prepared).history
        flaky = run_algorithm("heterofl", ci_prepared, scenario="flaky_edge").history
        k = ci_prepared.federated_config.clients_per_round

        assert all(len(r.selected_clients) == k for r in baseline.records)
        over_selected = [r for r in flaky.records if len(r.selected_clients) > k]
        assert over_selected, "over-selection never dispatched more than clients_per_round"
        for record in flaky.records:
            # composition is recorded: aggregated = selected minus dropped
            assert set(record.dropped_clients) <= set(record.selected_clients)
            assert record.aggregated_clients == [
                c for c in record.selected_clients if c not in set(record.dropped_clients)
            ]
            assert record.deadline_seconds is not None
        compositions_differ = any(
            old.selected_clients != new.selected_clients
            for old, new in zip(baseline.records, flaky.records)
        )
        assert compositions_differ

    def test_dropped_dispatches_count_as_communication_waste(self, ci_prepared):
        """HeteroFL returns what it was sent, so any waste must come from drops."""
        from repro.experiments.runner import run_algorithm

        history = run_algorithm("heterofl", ci_prepared, scenario="flaky_edge").history
        assert any(r.dropped_clients for r in history.records)
        for record in history.records:
            if record.dropped_clients:
                assert record.communication_waste > 0
            else:
                assert record.communication_waste == 0

    def test_dropped_rounds_still_round_trip(self, ci_prepared):
        from repro.experiments.runner import run_algorithm

        history = run_algorithm("heterofl", ci_prepared, scenario="flaky_edge").history
        payload = json.loads(json.dumps(history.to_dict()))
        rebuilt = TrainingHistory.from_dict(payload)
        assert rebuilt.to_dict() == history.to_dict()
        assert [r for r in rebuilt.records] == history.records
        assert isinstance(rebuilt.records[0], RoundRecord)
