"""Cohort-sharded streaming selection primitives (``repro.sim.cohorts``)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.cohorts import (
    cohort_counts,
    expand_cohort,
    iter_cohort_slices,
    masked_choice_without_replacement,
    nth_masked_index,
    reservoir_sample,
    streaming_top_k,
)


class TestCohortCounts:
    def test_tallies_per_cohort(self):
        mask = np.array([1, 0, 1, 1, 0, 0, 1, 1, 1], dtype=bool)
        assert cohort_counts(mask, cohort_size=4).tolist() == [3, 2, 1]

    def test_empty_mask(self):
        assert cohort_counts(np.zeros(0, dtype=bool), cohort_size=4).size == 0

    def test_rejects_bad_cohort_size(self):
        with pytest.raises(ValueError, match="cohort_size"):
            cohort_counts(np.ones(4, dtype=bool), cohort_size=0)


class TestNthMaskedIndex:
    def test_rank_translation(self):
        mask = np.array([0, 1, 0, 1, 1], dtype=bool)
        assert [nth_masked_index(mask, r) for r in range(3)] == [1, 3, 4]

    def test_out_of_range(self):
        with pytest.raises(IndexError):
            nth_masked_index(np.array([True, False]), 1)


class TestMaskedChoice:
    def dense_reference(self, rng, mask, k):
        return np.flatnonzero(mask)[rng.choice(int(mask.sum()), size=k, replace=False)]

    @pytest.mark.parametrize("seed", [0, 1, 7, 42])
    @pytest.mark.parametrize("cohort_size", [3, 16, 1000])
    def test_draw_equivalent_to_dense_reference(self, seed, cohort_size):
        rng = np.random.default_rng(seed)
        mask = np.random.default_rng(seed + 100).random(257) < 0.4
        k = min(20, int(mask.sum()))
        chosen = masked_choice_without_replacement(
            np.random.default_rng(seed), mask, k, cohort_size=cohort_size
        )
        reference = self.dense_reference(rng, mask, k)
        assert np.array_equal(chosen, reference)

    def test_exhaustive_draw_covers_every_online_client(self):
        mask = np.random.default_rng(3).random(100) < 0.5
        total = int(mask.sum())
        chosen = masked_choice_without_replacement(np.random.default_rng(0), mask, total, cohort_size=8)
        assert sorted(chosen.tolist()) == np.flatnonzero(mask).tolist()

    def test_rejects_oversampling_and_negative_k(self):
        mask = np.array([True, False, True])
        with pytest.raises(ValueError, match="cannot sample"):
            masked_choice_without_replacement(np.random.default_rng(0), mask, 3)
        with pytest.raises(ValueError, match="non-negative"):
            masked_choice_without_replacement(np.random.default_rng(0), mask, -1)

    def test_k_zero_consumes_no_randomness(self):
        rng = np.random.default_rng(5)
        before = rng.bit_generator.state
        out = masked_choice_without_replacement(rng, np.ones(10, dtype=bool), 0)
        assert out.size == 0
        assert rng.bit_generator.state == before

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 2**16), size=st.integers(1, 300), cohort=st.integers(1, 64))
    def test_property_matches_dense_reference(self, seed, size, cohort):
        mask = np.random.default_rng(seed).random(size) < 0.6
        total = int(mask.sum())
        k = min(total, 7)
        chosen = masked_choice_without_replacement(np.random.default_rng(seed), mask, k, cohort_size=cohort)
        reference = self.dense_reference(np.random.default_rng(seed), mask, k)
        assert np.array_equal(chosen, reference)


class TestReservoirSample:
    def test_short_stream_returned_whole(self):
        assert reservoir_sample(range(3), 10, np.random.default_rng(0)) == [0, 1, 2]

    def test_deterministic_for_fixed_seed(self):
        first = reservoir_sample(range(1000), 10, np.random.default_rng(9))
        second = reservoir_sample(range(1000), 10, np.random.default_rng(9))
        assert first == second
        assert len(set(first)) == 10

    def test_uniformity_over_many_seeds(self):
        hits = np.zeros(20)
        for seed in range(400):
            for item in reservoir_sample(range(20), 5, np.random.default_rng(seed)):
                hits[item] += 1
        # every item selected with probability 5/20 = 0.25 → ~100 hits each
        assert hits.min() > 60 and hits.max() < 140

    def test_rejects_negative_k(self):
        with pytest.raises(ValueError, match="non-negative"):
            reservoir_sample(range(5), -1, np.random.default_rng(0))


class TestStreamingTopK:
    def test_matches_sorted_reference(self):
        scored = [(i, float((i * 7919) % 101)) for i in range(200)]
        top = streaming_top_k(scored, 10)
        reference = sorted(scored, key=lambda pair: -pair[1])[:10]
        assert [score for _, score in top] == [score for _, score in reference]

    def test_ties_break_to_earlier_arrival(self):
        scored = [(0, 1.0), (1, 1.0), (2, 1.0)]
        assert streaming_top_k(scored, 2) == [(0, 1.0), (1, 1.0)]

    def test_k_zero_and_short_streams(self):
        assert streaming_top_k([(0, 1.0)], 0) == []
        assert streaming_top_k([(0, 1.0)], 5) == [(0, 1.0)]


class TestCohortIteration:
    def test_slices_cover_population_exactly_once(self):
        slices = list(iter_cohort_slices(10, cohort_size=4))
        assert slices == [slice(0, 4), slice(4, 8), slice(8, 10)]

    def test_expand_cohort_returns_absolute_ids(self):
        mask = np.array([0, 1, 1, 0, 1, 0, 1], dtype=bool)
        cohorts = list(iter_cohort_slices(mask.size, cohort_size=4))
        ids = np.concatenate([expand_cohort(mask, cohort) for cohort in cohorts])
        assert ids.tolist() == np.flatnonzero(mask).tolist()
