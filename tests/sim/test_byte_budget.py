"""Per-round byte budgets: metered-backhaul admission control.

``ScenarioSpec.round_byte_budget`` caps the bytes one round may move:
downlinks spend first (the server already sent them), then returned
uploads are admitted greedily in simulated arrival order while budget
remains.  The rules pinned here:

* refused uploads do not aggregate and cost zero uplink bytes,
* admission order is arrival order with dispatch position breaking ties,
* the greedy rule can admit a small late upload after refusing a large
  earlier one — deterministically,
* both fleet engines (legacy event-loop and vectorized) make identical
  admission decisions,
* a budget makes the scenario dynamic (the static fast path would skip
  admission control entirely).
"""

import pytest

from repro.sim.fleet import BYTES_PER_PARAM, ClientDispatch, FleetSimulator
from repro.sim.library import congested_metered, congested_network
from repro.sim.scenario import DeviceTemplate, ScenarioSpec, get_scenario


def dispatch(client_id, params_down=1000, params_up=1000, flops=5000, samples=50, epochs=1):
    return ClientDispatch(
        client_id=client_id,
        params_down=params_down,
        params_up=params_up,
        flops_per_sample=flops,
        num_samples=samples,
        local_epochs=epochs,
    )


def budget_fleet(budget, num_clients=4, seed=0, engine="legacy", devices=None, **spec_kwargs):
    if devices is None:
        devices = (
            DeviceTemplate(
                name="d", device_class="medium", flops_per_second=1e6, bandwidth_mbps=10.0, fraction=1.0
            ),
        )
    spec = ScenarioSpec(name="metered", devices=devices, round_byte_budget=budget, **spec_kwargs)
    return FleetSimulator(spec, num_clients=num_clients, seed=seed, engine=engine)


class TestSpecValidation:
    @pytest.mark.parametrize("budget", [0, -1, -100])
    def test_nonpositive_budget_rejected(self, budget):
        with pytest.raises(ValueError, match="round_byte_budget"):
            ScenarioSpec(
                name="bad",
                devices=(
                    DeviceTemplate(
                        name="d", device_class="weak", flops_per_second=1e6, bandwidth_mbps=1.0, fraction=1.0
                    ),
                ),
                round_byte_budget=budget,
            )

    def test_budget_makes_the_scenario_dynamic(self):
        base = get_scenario("stable_lab")
        assert base.is_static
        metered = ScenarioSpec(
            name="metered", devices=base.devices, round_byte_budget=10_000
        )
        assert not metered.is_static

    def test_budget_roundtrips_through_to_dict(self):
        spec = congested_metered()
        payload = spec.to_dict()
        assert payload["round_byte_budget"] == spec.round_byte_budget
        rebuilt = ScenarioSpec.from_dict(payload)
        assert rebuilt == spec
        # None round-trips too
        plain = congested_network()
        assert ScenarioSpec.from_dict(plain.to_dict()).round_byte_budget is None

    def test_congested_metered_is_the_metered_congested_network(self):
        metered, congested = congested_metered(), congested_network()
        assert metered.round_byte_budget == 192_000
        assert metered.devices == congested.devices
        assert metered.network == congested.network
        assert congested.round_byte_budget is None


class TestAdmission:
    def test_ample_budget_changes_nothing(self):
        dispatches = [dispatch(c) for c in range(4)]
        capped = budget_fleet(10**9).simulate_round(0, dispatches)
        uncapped = budget_fleet(None).simulate_round(0, dispatches)
        assert [c.aggregated for c in capped.clients] == [c.aggregated for c in uncapped.clients]
        assert [c.bytes_up for c in capped.clients] == [c.bytes_up for c in uncapped.clients]

    def test_downlinks_spend_the_budget_first(self):
        """A budget smaller than the summed downlinks refuses every upload."""
        dispatches = [dispatch(c) for c in range(4)]
        total_down = 4 * 1000 * BYTES_PER_PARAM
        outcome = budget_fleet(total_down - 1).simulate_round(0, dispatches)
        assert all(not c.aggregated for c in outcome.clients)
        assert all(c.bytes_up == 0 for c in outcome.clients)
        # the downlink bytes were still spent (the server already sent them)
        assert all(c.bytes_down == 1000 * BYTES_PER_PARAM for c in outcome.clients)

    def test_partial_budget_admits_in_arrival_order(self):
        """Identical devices and loads: arrival ties break by dispatch position."""
        dispatches = [dispatch(c) for c in range(4)]
        down = 4 * 1000 * BYTES_PER_PARAM
        up = 1000 * BYTES_PER_PARAM
        outcome = budget_fleet(down + 2 * up).simulate_round(0, dispatches)
        assert [c.aggregated for c in outcome.clients] == [True, True, False, False]
        assert [c.bytes_up for c in outcome.clients] == [up, up, 0, 0]

    def test_greedy_rule_admits_a_small_upload_after_a_large_refusal(self):
        """Client 0 uploads big, clients 1-3 small; the budget refuses the
        big upload but still admits the small ones that arrive later."""
        dispatches = [dispatch(0, params_up=5000)] + [
            dispatch(c, params_up=100) for c in range(1, 4)
        ]
        down = 4 * 1000 * BYTES_PER_PARAM
        outcome = budget_fleet(down + 3 * 100 * BYTES_PER_PARAM).simulate_round(0, dispatches)
        # client 0 (largest upload, latest finisher here anyway) refused,
        # the three small uploads all fit
        flags = {c.client_id: c.aggregated for c in outcome.clients}
        assert flags == {0: False, 1: True, 2: True, 3: True}
        assert outcome.clients[0].bytes_up == 0

    def test_refusal_is_not_a_drop(self):
        """Refused clients still *returned* (trained and tried to upload)."""
        dispatches = [dispatch(c) for c in range(4)]
        outcome = budget_fleet(1).simulate_round(0, dispatches)
        for client in outcome.clients:
            assert client.finish_seconds is not None
            assert not client.dropped
            assert not client.aggregated


class TestEngineParity:
    JITTER_DEVICES = (
        DeviceTemplate(
            name="slow", device_class="weak", flops_per_second=5e5, bandwidth_mbps=4.0,
            fraction=0.5, compute_jitter=0.3, link_latency_s=0.05, link_jitter_s=0.1,
        ),
        DeviceTemplate(
            name="fast", device_class="strong", flops_per_second=2e6, bandwidth_mbps=20.0,
            fraction=0.5, compute_jitter=0.1, link_latency_s=0.01, link_jitter_s=0.05,
        ),
    )

    @pytest.mark.parametrize("budget", [1, 30_000, 10**9])
    def test_legacy_and_vectorized_make_identical_decisions(self, budget):
        dispatches = [dispatch(c, params_up=500 * (c + 1)) for c in range(8)]
        outcomes = {}
        for engine in ("legacy", "vectorized"):
            fleet = budget_fleet(
                budget, num_clients=8, seed=11, engine=engine, devices=self.JITTER_DEVICES
            )
            outcomes[engine] = fleet.simulate_round(0, dispatches)
        legacy, vectorized = outcomes["legacy"], outcomes["vectorized"]
        assert [c.aggregated for c in legacy.clients] == [c.aggregated for c in vectorized.clients]
        assert [c.bytes_up for c in legacy.clients] == [c.bytes_up for c in vectorized.clients]
        assert [c.bytes_down for c in legacy.clients] == [c.bytes_down for c in vectorized.clients]
        assert legacy.round_seconds == vectorized.round_seconds

    def test_budget_binds_under_congestion_and_codecs_relieve_it(self):
        """The congested_metered story: exact uplinks overflow the budget,
        a 4x-smaller (codec-sized) uplink fits everyone."""
        spec = congested_metered()
        # 6 downlinks of 4k params fit the 192kB budget; 6 exact 8k-param
        # uplinks overflow what remains, 6 codec-sized 2k-param uplinks don't
        exact = FleetSimulator(spec, num_clients=10, seed=3)
        outcome = exact.simulate_round(
            0, [dispatch(c, params_down=4_000, params_up=8_000) for c in range(6)]
        )
        refused_exact = sum(1 for c in outcome.clients if not c.aggregated)

        compressed = FleetSimulator(spec, num_clients=10, seed=3)
        outcome = compressed.simulate_round(
            0, [dispatch(c, params_down=4_000, params_up=2_000) for c in range(6)]
        )
        refused_compressed = sum(1 for c in outcome.clients if not c.aggregated)
        assert refused_exact > refused_compressed


class TestDeterminism:
    def test_same_seed_same_refusals(self):
        dispatches = [dispatch(c) for c in range(6)]
        flags = []
        for _ in range(2):
            fleet = budget_fleet(
                4 * 1000 * BYTES_PER_PARAM + 1500 * BYTES_PER_PARAM,
                num_clients=6,
                seed=9,
                devices=TestEngineParity.JITTER_DEVICES,
            )
            outcome = fleet.simulate_round(0, dispatches)
            flags.append([c.aggregated for c in outcome.clients])
        assert flags[0] == flags[1]

    def test_refusals_follow_arrival_not_dispatch_order(self):
        """With heterogeneous finish times the earliest arrivals win the
        budget even when dispatched last."""
        devices = (
            DeviceTemplate(
                name="slow", device_class="weak", flops_per_second=2e5, bandwidth_mbps=1.0, fraction=0.5
            ),
            DeviceTemplate(
                name="fast", device_class="strong", flops_per_second=1e7, bandwidth_mbps=100.0, fraction=0.5
            ),
        )
        # fraction expansion assigns clients 0-1 the slow template and 2-3
        # the fast one; dispatch the slow clients first
        dispatches = [dispatch(c) for c in (0, 1, 2, 3)]
        up, down = 1000 * BYTES_PER_PARAM, 4 * 1000 * BYTES_PER_PARAM
        fleet = budget_fleet(down + 2 * up, num_clients=4, seed=0, devices=devices)
        outcome = fleet.simulate_round(0, dispatches)
        flags = {c.client_id: c.aggregated for c in outcome.clients}
        arrivals = {c.client_id: c.finish_seconds for c in outcome.clients}
        assert arrivals[2] < arrivals[0] and arrivals[3] < arrivals[1]
        assert flags == {0: False, 1: False, 2: True, 3: True}
