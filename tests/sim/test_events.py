"""The discrete-event core: ordering, tie-breaking, cancellation, the gate."""

import pytest

from repro.sim.events import EventQueue, TransferGate


class TestEventQueue:
    def test_events_fire_in_time_order(self):
        queue = EventQueue()
        fired = []
        queue.schedule(3.0, lambda: fired.append("c"))
        queue.schedule(1.0, lambda: fired.append("a"))
        queue.schedule(2.0, lambda: fired.append("b"))
        end = queue.run()
        assert fired == ["a", "b", "c"]
        assert end == 3.0

    def test_ties_break_fifo(self):
        queue = EventQueue()
        fired = []
        for label in "abcd":
            queue.schedule(1.0, lambda label=label: fired.append(label))
        queue.run()
        assert fired == ["a", "b", "c", "d"]

    def test_callbacks_schedule_relative_to_now(self):
        queue = EventQueue()
        times = []

        def first():
            queue.schedule(2.0, lambda: times.append(queue.now))

        queue.schedule(1.0, first)
        queue.run()
        assert times == [3.0]

    def test_cancelled_events_are_skipped(self):
        queue = EventQueue()
        fired = []
        event = queue.schedule(1.0, lambda: fired.append("cancelled"))
        queue.schedule(2.0, lambda: fired.append("kept"))
        queue.cancel(event)
        queue.run()
        assert fired == ["kept"]
        assert len(queue) == 0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-0.1, lambda: None)


class TestTransferGate:
    def test_unlimited_gate_starts_immediately(self):
        gate = TransferGate(None)
        started = []
        for i in range(5):
            gate.acquire(lambda i=i: started.append(i))
        assert started == list(range(5))

    def test_bounded_gate_queues_fifo(self):
        gate = TransferGate(2)
        started = []
        for i in range(4):
            gate.acquire(lambda i=i: started.append(i))
        assert started == [0, 1]
        gate.release()
        assert started == [0, 1, 2]
        assert gate.waiting == 1
        gate.release()
        assert started == [0, 1, 2, 3]

    def test_release_without_acquire_errors(self):
        with pytest.raises(RuntimeError):
            TransferGate(1).release()

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            TransferGate(0)
