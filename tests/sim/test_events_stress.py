"""Stress + property tests of the event engine's ordering guarantees.

Satellite of the fleet-scale PR: at 10⁵+ devices, thousands of events can
share one timestamp (identical device templates → identical finish
times), so FIFO tie-breaking and transfer-slot fairness stop being edge
cases and become the common case.  These tests pin both under thousands
of identical-timestamp events.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import EventQueue, TransferGate


class TestEventQueueFIFOStress:
    def test_thousands_of_identical_timestamps_run_in_schedule_order(self):
        queue = EventQueue()
        fired: list[int] = []
        for i in range(5000):
            queue.schedule(1.0, lambda i=i: fired.append(i))
        queue.run()
        assert fired == list(range(5000))

    def test_interleaved_times_sort_by_time_then_fifo(self):
        queue = EventQueue()
        fired: list[tuple[float, int]] = []
        # schedule out of time order, thousands per timestamp bucket
        times = [3.0, 1.0, 2.0, 1.0, 3.0, 2.0] * 1000
        for i, t in enumerate(times):
            queue.schedule(t, lambda t=t, i=i: fired.append((t, i)))
        queue.run()
        assert fired == sorted(fired, key=lambda pair: (pair[0], pair[1]))

    def test_cancellation_under_ties_preserves_survivor_order(self):
        queue = EventQueue()
        fired: list[int] = []
        events = [queue.schedule(1.0, lambda i=i: fired.append(i)) for i in range(2000)]
        for event in events[::2]:
            queue.cancel(event)
        queue.run()
        assert fired == list(range(1, 2000, 2))

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.sampled_from([0.0, 1.0, 1.5, 2.0]), min_size=1, max_size=200))
    def test_property_stable_sort_of_schedule_order(self, delays):
        """run() is a stable sort of the schedule sequence by time."""
        queue = EventQueue()
        fired: list[int] = []
        for i, delay in enumerate(delays):
            queue.schedule(delay, lambda i=i: fired.append(i))
        queue.run()
        expected = [i for _, i in sorted(zip(delays, range(len(delays))), key=lambda p: (p[0], p[1]))]
        assert fired == expected


class TestTransferGateFairnessStress:
    def test_thousands_of_simultaneous_requests_start_in_request_order(self):
        gate = TransferGate(capacity=4)
        started: list[int] = []
        for i in range(3000):
            gate.acquire(lambda i=i: started.append(i))
        # drain: every release admits exactly the longest-waiting transfer
        while gate.active:
            gate.release()
        assert started == list(range(3000))

    def test_no_slot_starvation_with_rolling_traffic(self):
        """Later arrivals never overtake queued earlier arrivals."""
        gate = TransferGate(capacity=2)
        started: list[int] = []
        rng = np.random.default_rng(0)
        next_id = 0
        for _ in range(2000):
            if rng.random() < 0.6 or gate.active == 0:
                gate.acquire(lambda i=next_id: started.append(i))
                next_id += 1
            else:
                gate.release()
        while gate.active:
            gate.release()
        assert started == sorted(started)
        assert len(started) == next_id  # every request eventually started

    def test_unlimited_gate_starts_everything_immediately(self):
        gate = TransferGate(capacity=None)
        started: list[int] = []
        for i in range(1000):
            gate.acquire(lambda i=i: started.append(i))
        assert started == list(range(1000))
        assert gate.waiting == 0

    @settings(max_examples=50, deadline=None)
    @given(
        capacity=st.integers(1, 5),
        ops=st.lists(st.booleans(), min_size=1, max_size=300),
    )
    def test_property_fifo_admission_and_slot_invariant(self, capacity, ops):
        """active ≤ capacity always; admissions happen in request order."""
        gate = TransferGate(capacity=capacity)
        started: list[int] = []
        requested = 0
        for acquire in ops:
            if acquire or gate.active == 0:
                gate.acquire(lambda i=requested: started.append(i))
                requested += 1
            else:
                gate.release()
            assert gate.active <= capacity
        while gate.active:
            gate.release()
        assert started == list(range(requested))
