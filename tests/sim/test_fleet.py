"""FleetSimulator unit behaviour: expansion, traces, dynamics, accounting."""

import numpy as np
import pytest

from repro.devices.testbed import TestbedSimulator
from repro.sim.fleet import ClientDispatch, FleetSimulator
from repro.sim.scenario import (
    AvailabilitySpec,
    BatterySpec,
    DeviceTemplate,
    NetworkSpec,
    ScenarioSpec,
    get_scenario,
)


def dispatch(client_id, params=1000, flops=5000, samples=50, epochs=1):
    return ClientDispatch(
        client_id=client_id,
        params_down=params,
        params_up=params,
        flops_per_sample=flops,
        num_samples=samples,
        local_epochs=epochs,
    )


def fleet_of(num_clients=4, seed=0, **spec_kwargs):
    spec_kwargs.setdefault(
        "devices",
        (DeviceTemplate(name="d", device_class="medium", flops_per_second=1e6, bandwidth_mbps=10.0, fraction=1.0),),
    )
    return FleetSimulator(ScenarioSpec(name="unit", **spec_kwargs), num_clients=num_clients, seed=seed)


class TestExpansion:
    def test_fixed_counts_expand_verbatim(self):
        fleet = FleetSimulator(get_scenario("paper_testbed"), num_clients=17)
        names = [device.name for device in fleet.devices]
        assert names == ["raspberry_pi_4b"] * 4 + ["jetson_nano"] * 10 + ["jetson_xavier_agx"] * 3

    def test_fixed_counts_scale_proportionally_when_fleet_size_differs(self):
        fleet = FleetSimulator(get_scenario("paper_testbed"), num_clients=34)
        names = [device.name for device in fleet.devices]
        assert names.count("raspberry_pi_4b") == 8
        assert names.count("jetson_nano") == 20
        assert names.count("jetson_xavier_agx") == 6

    def test_fraction_expansion_uses_largest_remainder(self):
        fleet = FleetSimulator(get_scenario("stable_lab"), num_clients=10)
        classes = [device.device_class for device in fleet.devices]
        assert classes.count("weak") == 4
        assert classes.count("medium") == 3
        assert classes.count("strong") == 3

    def test_paper_testbed_profiles_match_legacy_testbed(self):
        fleet = FleetSimulator(get_scenario("paper_testbed"), num_clients=17)
        legacy = TestbedSimulator().build_profiles()  # identity order, no permutation
        assert fleet.build_profiles() == legacy


class TestStaticTiming:
    def test_closed_form_matches_legacy_testbed_bitwise(self):
        testbed = TestbedSimulator()
        testbed.build_profiles()  # identity order
        fleet = FleetSimulator(get_scenario("paper_testbed"), num_clients=17)
        dispatches = [dispatch(c, params=5000, flops=20000, samples=40, epochs=2) for c in range(17)]
        outcome = fleet.simulate_round(0, dispatches)
        expected = [
            testbed.client_round_time(
                c, params_down=5000, params_up=5000, flops_per_sample=20000, num_samples=40, local_epochs=2
            )
            for c in range(17)
        ]
        assert outcome.arrival_seconds() == expected
        assert outcome.round_seconds == testbed.round_time(expected)
        assert outcome.deadline_seconds is None
        assert outcome.aggregated_positions() == list(range(17))

    def test_empty_round(self):
        fleet = fleet_of()
        outcome = fleet.simulate_round(0, [])
        assert outcome.round_seconds == 0.0
        assert outcome.clients == []


class TestAvailability:
    def test_always_on(self):
        fleet = fleet_of(num_clients=5)
        assert fleet.available_clients(3) == list(range(5))

    def test_markov_trace_is_deterministic_and_varies(self):
        kwargs = dict(num_clients=12, availability=AvailabilitySpec(kind="markov", p_drop=0.4, p_join=0.4))
        first = [fleet_of(seed=7, **kwargs).available_clients(r) for r in range(6)]
        second = [fleet_of(seed=7, **kwargs).available_clients(r) for r in range(6)]
        assert first == second
        sizes = {len(avail) for avail in first}
        assert len(sizes) > 1  # churn actually happens
        assert all(avail for avail in first)  # never empty (fallback guards)

    def test_markov_queries_out_of_order_are_consistent(self):
        kwargs = dict(num_clients=8, availability=AvailabilitySpec(kind="markov", p_drop=0.3, p_join=0.5))
        fleet = fleet_of(seed=3, **kwargs)
        later = fleet.available_clients(5)
        fresh = fleet_of(seed=3, **kwargs)
        sequential = [fresh.available_clients(r) for r in range(6)]
        assert later == sequential[5]

    def test_diurnal_cycle_repeats_with_period(self):
        fleet = fleet_of(
            num_clients=10,
            availability=AvailabilitySpec(kind="diurnal", period_rounds=6, on_fraction=0.5),
        )
        pattern = [tuple(fleet.available_clients(r)) for r in range(6)]
        repeated = [tuple(fleet.available_clients(r + 6)) for r in range(6)]
        assert pattern == repeated
        assert len({p for p in pattern}) > 1  # phases differ across the day


class TestDynamics:
    def test_dropouts_are_deterministic_and_recorded(self):
        kwargs = dict(num_clients=10, dropout_rate=0.5)
        one = fleet_of(seed=5, **kwargs).simulate_round(0, [dispatch(c) for c in range(10)])
        two = fleet_of(seed=5, **kwargs).simulate_round(0, [dispatch(c) for c in range(10)])
        assert [c.dropped for c in one.clients] == [c.dropped for c in two.clients]
        assert any(c.dropped for c in one.clients)
        assert any(not c.dropped for c in one.clients)
        for client in one.clients:
            if client.dropped:
                assert client.finish_seconds is None
                assert client.bytes_up == 0
                assert not client.aggregated

    def test_congestion_delays_transfers(self):
        devices = (
            DeviceTemplate(
                name="d",
                device_class="medium",
                flops_per_second=1e6,
                bandwidth_mbps=1.0,
                fraction=1.0,
                link_latency_s=0.01,
            ),
        )
        free = fleet_of(num_clients=6, devices=devices)
        jammed = fleet_of(num_clients=6, devices=devices, network=NetworkSpec(server_concurrency=1))
        dispatches = [dispatch(c, params=100_000) for c in range(6)]
        t_free = free.simulate_round(0, dispatches)
        t_jammed = jammed.simulate_round(0, dispatches)
        assert t_jammed.round_seconds > t_free.round_seconds
        # with one slot the last client's finish stacks ~6 serialized transfers
        assert max(t_jammed.arrival_seconds()) > 2 * max(t_free.arrival_seconds())

    def test_fixed_deadline_splits_arrivals(self):
        devices = (
            DeviceTemplate(name="slow", device_class="weak", flops_per_second=1e5, bandwidth_mbps=1.0, fraction=0.5, link_latency_s=0.01),
            DeviceTemplate(name="fast", device_class="strong", flops_per_second=1e8, bandwidth_mbps=100.0, fraction=0.5, link_latency_s=0.01),
        )
        fleet = fleet_of(num_clients=4, devices=devices, deadline_seconds=1.0)
        outcome = fleet.simulate_round(0, [dispatch(c, flops=20000) for c in range(4)])
        aggregated = {c.client_id for c in outcome.clients if c.aggregated}
        assert aggregated == {2, 3}  # the two fast devices
        assert outcome.round_seconds == 1.0  # the server waits out the deadline
        assert outcome.deadline_seconds == 1.0

    def test_factor_deadline_uses_round_median(self):
        devices = (
            DeviceTemplate(name="d", device_class="medium", flops_per_second=1e6, bandwidth_mbps=10.0, fraction=1.0, compute_jitter=0.5),
        )
        fleet = fleet_of(num_clients=8, devices=devices, deadline_factor=1.2)
        outcome = fleet.simulate_round(0, [dispatch(c) for c in range(8)])
        finishes = [f for f in outcome.arrival_seconds() if f is not None]
        assert outcome.deadline_seconds == pytest.approx(1.2 * float(np.median(finishes)))

    def test_rounds_must_advance_monotonically(self):
        fleet = fleet_of()
        fleet.simulate_round(0, [dispatch(0)])
        with pytest.raises(ValueError):
            fleet.simulate_round(0, [dispatch(0)])


class TestBattery:
    def battery_fleet(self):
        return fleet_of(
            num_clients=3,
            seed=1,
            battery=BatterySpec(
                capacity_joules=50.0,
                compute_watts=10.0,
                transfer_joules_per_mb=0.0,
                recharge_watts=1.0,
                min_charge_fraction=0.2,
                resume_charge_fraction=0.6,
            ),
        )

    def test_training_drains_and_idle_recharges(self):
        fleet = self.battery_fleet()
        before = fleet.battery_charge(0)
        # ~3 seconds of compute at 10 W drains 30 J from client 0
        fleet.simulate_round(0, [dispatch(0, flops=20000, samples=50, epochs=1)])
        assert fleet.battery_charge(0) < before
        assert fleet.battery_charge(1) == before  # already full, recharge capped

    def test_depleted_client_sits_out_until_recovered(self):
        fleet = self.battery_fleet()
        round_index = 0
        while 0 not in getattr(fleet, "_recovering"):
            fleet.simulate_round(round_index, [dispatch(0, flops=20000)])
            round_index += 1
            assert round_index < 50
        assert 0 not in fleet.available_clients(round_index)
        # idle rounds recharge it back above the resume threshold
        while 0 in getattr(fleet, "_recovering"):
            fleet.simulate_round(round_index, [dispatch(1, flops=20000)])
            round_index += 1
            assert round_index < 500
        assert 0 in fleet.available_clients(round_index)

    def test_insufficient_charge_is_a_mid_round_death(self):
        fleet = fleet_of(
            num_clients=2,
            battery=BatterySpec(
                capacity_joules=5.0,
                compute_watts=10.0,
                transfer_joules_per_mb=0.0,
                recharge_watts=0.0,
                min_charge_fraction=0.0,
                resume_charge_fraction=0.0,
            ),
        )
        # needs ~30 J of compute but only 5 J are in the battery
        outcome = fleet.simulate_round(0, [dispatch(0, flops=20000)])
        assert outcome.clients[0].dropped
        assert outcome.clients[0].finish_seconds is None
