"""Regression tests of deterministic largest-remainder device expansion.

The historical per-template rounding drifted at large N (fraction sums
that rounded away clients or manufactured extras).  The rewritten
:func:`repro.sim.fleet._expand_device_counts` must produce counts that
sum *exactly* to ``num_clients`` at any scale, deterministically.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.fleet import _expand_device_counts, _expand_devices
from repro.sim.scenario import DeviceTemplate


def fraction_templates(fractions):
    return tuple(
        DeviceTemplate(
            name=f"t{i}", device_class="medium", flops_per_second=1e6,
            bandwidth_mbps=10.0, fraction=fraction,
        )
        for i, fraction in enumerate(fractions)
    )


def count_templates(counts):
    return tuple(
        DeviceTemplate(
            name=f"t{i}", device_class="medium", flops_per_second=1e6,
            bandwidth_mbps=10.0, count=count,
        )
        for i, count in enumerate(counts)
    )


class TestLargestRemainder:
    def test_thirds_sum_exactly_at_every_scale(self):
        templates = fraction_templates([1 / 3, 1 / 3, 1 / 3])
        for num_clients in (10, 100, 10_000, 1_000_000):
            counts = _expand_device_counts(templates, num_clients)
            assert sum(counts) == num_clients
            # a three-way even split never deviates by more than one client
            assert max(counts) - min(counts) <= 1

    def test_million_client_expansion_is_exact_and_proportional(self):
        fractions = [0.123456, 0.234567, 0.345678, 0.296299]
        counts = _expand_device_counts(fraction_templates(fractions), 1_000_000)
        assert sum(counts) == 1_000_000
        for count, fraction in zip(counts, fractions):
            assert abs(count - fraction * 1_000_000) < 1.0

    def test_deterministic_tie_break_prefers_earlier_template(self):
        # remainders are all equal (0.5): the extra client goes to index 0
        counts = _expand_device_counts(fraction_templates([0.5, 0.5]), 5)
        assert counts == [3, 2]

    def test_unnormalised_fractions_are_renormalised(self):
        counts = _expand_device_counts(fraction_templates([2.0, 6.0]), 8)
        assert counts == [2, 6]

    def test_fixed_counts_kept_verbatim_and_scaled_otherwise(self):
        templates = count_templates([4, 10, 3])
        assert _expand_device_counts(templates, 17) == [4, 10, 3]
        scaled = _expand_device_counts(templates, 170)
        assert scaled == [40, 100, 30]

    def test_more_templates_than_clients(self):
        counts = _expand_device_counts(fraction_templates([0.25] * 4), 2)
        assert sum(counts) == 2
        assert counts == [1, 1, 0, 0]

    def test_expand_devices_wrapper_matches_counts(self):
        templates = fraction_templates([0.6, 0.4])
        devices = _expand_devices(templates, 10)
        assert [d.name for d in devices] == ["t0"] * 6 + ["t1"] * 4

    @settings(max_examples=100, deadline=None)
    @given(
        fractions=st.lists(st.floats(0.01, 1.0, allow_nan=False), min_size=1, max_size=8),
        num_clients=st.integers(1, 500_000),
    )
    def test_property_exact_sum_and_bounded_error(self, fractions, num_clients):
        templates = fraction_templates(fractions)
        counts = _expand_device_counts(templates, num_clients)
        assert sum(counts) == num_clients
        assert all(count >= 0 for count in counts)
        total = sum(fractions)
        for count, fraction in zip(counts, fractions):
            exact = fraction / total * num_clients
            # largest-remainder never strays more than one client per
            # template from the exact proportional share (plus float fuzz)
            assert count - exact < 1.0 + 1e-6 * num_clients
            assert exact - count < 1.0 + 1e-6 * num_clients

    def test_repeat_calls_are_deterministic(self):
        templates = fraction_templates([0.3, 0.3, 0.4])
        reference = _expand_device_counts(templates, 12345)
        assert all(_expand_device_counts(templates, 12345) == reference for _ in range(5))


class TestScaleConstruction:
    @pytest.mark.parametrize("num_clients", [100_000, 1_000_000])
    def test_fleet_construction_is_cheap_at_scale(self, num_clients):
        """SoA construction: no per-device Python objects at build time."""
        from repro.sim.fleet import FleetSimulator
        from repro.sim.scenario import ScenarioSpec

        spec = ScenarioSpec(name="scale", devices=fraction_templates([0.5, 0.3, 0.2]))
        fleet = FleetSimulator(spec, num_clients=num_clients, seed=0)
        assert fleet.num_clients == num_clients
        assert len(fleet.devices) == num_clients
        # the lazy façade answers point queries without materialising a list
        assert fleet.devices[0].name == "t0"
        assert fleet.devices[num_clients - 1].name == "t2"
        assert fleet.available_mask(0).sum() == num_clients
        assert math.isclose(fleet._flops.sum(), 1e6 * num_clients)
