"""Experiment-harness tests: settings, scales, runner and reporting."""

import numpy as np
import pytest

from repro.core.history import RoundRecord, TrainingHistory
from repro.experiments import (
    ALL_ALGORITHM_NAMES,
    PAPER_TABLE2,
    PAPER_TABLE3,
    PAPER_TABLE4,
    AlgorithmResult,
    ExperimentSetting,
    format_table,
    get_scale,
    paper_pool_config,
    prepare_experiment,
    render_accuracy_table,
    render_learning_curves,
    render_waste_table,
    run_algorithm,
    vgg16_table1_settings,
)


class TestScales:
    def test_presets_exist(self):
        for name in ("ci", "small", "paper"):
            scale = get_scale(name)
            assert scale.name == name

    def test_paper_scale_matches_publication(self):
        scale = get_scale("paper")
        assert scale.num_clients == 100
        assert scale.clients_per_round == 10
        assert scale.local_epochs == 5
        assert scale.batch_size == 50
        assert scale.image_size == 32

    def test_overrides(self):
        scale = get_scale("ci", num_rounds=3)
        assert scale.num_rounds == 3

    def test_unknown_scale(self):
        with pytest.raises(KeyError):
            get_scale("huge")


class TestSettings:
    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentSetting(dataset="imagenet")
        with pytest.raises(ValueError):
            ExperimentSetting(distribution="dirichlet")  # missing alpha
        with pytest.raises(ValueError):
            ExperimentSetting(distribution="zipf")

    def test_prepare_experiment_wiring(self):
        setting = ExperimentSetting(dataset="cifar10", model="simple_cnn", distribution="iid", scale="ci")
        prepared = prepare_experiment(setting)
        assert prepared.partition.num_clients == prepared.scale.num_clients
        assert len(prepared.profiles) == prepared.scale.num_clients
        assert prepared.architecture.num_classes == 10
        assert prepared.train_dataset.input_shape == prepared.architecture.input_shape
        kwargs = prepared.algorithm_kwargs()
        assert set(kwargs) >= {"architecture", "train_dataset", "partition", "test_dataset", "profiles"}

    def test_femnist_uses_natural_groups(self):
        setting = ExperimentSetting(dataset="femnist", model="simple_cnn", distribution="natural", scale="ci")
        prepared = prepare_experiment(setting)
        assert prepared.train_dataset.groups is not None
        assert prepared.architecture.num_classes == 62

    def test_dirichlet_alpha_controls_partition(self):
        setting = ExperimentSetting(dataset="cifar10", model="simple_cnn", distribution="dirichlet", alpha=0.3, scale="ci")
        prepared = prepare_experiment(setting)
        prepared.partition.validate(prepared.train_dataset)

    def test_paper_pool_config_for_deep_and_shallow_models(self):
        setting = ExperimentSetting(dataset="cifar10", model="simple_cnn", scale="ci")
        prepared = prepare_experiment(setting)
        pool_config = paper_pool_config(prepared.architecture)
        assert max(pool_config.start_layers) < prepared.architecture.num_prunable_layers()
        assert len(pool_config.start_layers) == 3

    def test_table1_settings_rows(self):
        rows = vgg16_table1_settings()
        assert len(rows) == 7
        assert rows[0]["level"] == "L1"
        assert rows[0]["paper_params_m"] == pytest.approx(33.65)


class TestRunner:
    def test_run_single_algorithm_ci_scale(self):
        setting = ExperimentSetting(dataset="cifar10", model="simple_cnn", scale="ci", overrides={"num_rounds": 2, "eval_every": 2})
        prepared = prepare_experiment(setting)
        result = run_algorithm("heterofl", prepared)
        assert isinstance(result, AlgorithmResult)
        assert 0.0 <= result.full_accuracy <= 1.0
        assert len(result.history) == 2

    def test_adaptivefl_strategy_labelling(self):
        setting = ExperimentSetting(dataset="cifar10", model="simple_cnn", scale="ci", overrides={"num_rounds": 1, "eval_every": 1})
        prepared = prepare_experiment(setting)
        result = run_algorithm("adaptivefl", prepared, selection_strategy="random")
        assert result.algorithm == "adaptivefl+random"

    def test_unknown_algorithm(self):
        setting = ExperimentSetting(dataset="cifar10", model="simple_cnn", scale="ci")
        prepared = prepare_experiment(setting)
        with pytest.raises(KeyError):
            run_algorithm("fedprox", prepared)

    def test_all_algorithm_names_cover_paper_table2(self):
        assert set(ALL_ALGORITHM_NAMES) == set(PAPER_TABLE2["vgg16"]["cifar10-iid"].keys())


class TestReporting:
    def make_result(self, name, accuracy):
        history = TrainingHistory(name)
        history.append(
            RoundRecord(round_index=0, full_accuracy=accuracy, avg_accuracy=accuracy - 0.02,
                        level_accuracies={"S": accuracy - 0.05, "M": accuracy, "L": accuracy},
                        communication_waste=0.1)
        )
        return AlgorithmResult.from_history(name, history)

    def test_format_table(self):
        text = format_table(["a", "b"], [[1, 2], [3, 4]])
        assert "a" in text and "3" in text
        assert len(text.splitlines()) == 4

    def test_render_accuracy_table(self):
        results = {"heterofl": self.make_result("heterofl", 0.7), "adaptivefl": self.make_result("adaptivefl", 0.8)}
        text = render_accuracy_table(results, title="demo")
        assert "adaptivefl" in text
        assert "80.00" in text

    def test_render_learning_curves(self):
        results = {"adaptivefl": self.make_result("adaptivefl", 0.5)}
        text = render_learning_curves(results, kind="full")
        assert "(0, 50.0)" in text

    def test_render_waste_table(self):
        results = {"adaptivefl": self.make_result("adaptivefl", 0.5)}
        assert "10.00" in render_waste_table(results)

    def test_paper_reference_tables_are_consistent(self):
        # AdaptiveFL must be the best "full" entry of every Table 2 cell, as claimed.
        for model_rows in PAPER_TABLE2.values():
            for cell in model_rows.values():
                best = max(cell.items(), key=lambda item: item[1][1])
                assert best[0] == "adaptivefl"
        assert set(PAPER_TABLE3) == {"4:3:3", "8:1:1", "1:8:1", "1:1:8"}
        assert set(PAPER_TABLE4) == {"cifar10", "cifar100"}
