"""Property-test suite of the compressed transport tier (``repro.engine.codecs``).

Hypothesis pins the contracts every codec ships under:

* **Error bounds** — ``decode(encode(x))`` stays within the codec's
  quantization step of ``x`` (fp16: one float16 grid spacing; int8: one
  lattice step ``scale``; topk: kept coordinates exact, dropped ones
  zero), and the passthrough codec is bit-exact.
* **Idempotence** — re-encoding an already-decoded payload reproduces it
  (the decoded values sit on the codec's grid).
* **Self-description** — shapes and dtypes round-trip from the payload's
  own metadata; non-float tensors always travel raw and exact.
* **Determinism** — the same ``SeedSequence`` produces bit-identical
  blobs; the codec stream is disjoint from the training stream.
* **Error feedback** — ``decoded + new_residual`` reconstructs the full
  pre-encode update exactly, and iterated residuals stay bounded.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.codecs import (
    CODEC_SPAWN_KEY,
    EncodedUpdate,
    Fp16Codec,
    Int8Codec,
    PassthroughCodec,
    TopKCodec,
    UpdateCodec,
    apply_encoded_update,
    available_codecs,
    codec_from_dict,
    codec_generator,
    decode_update,
    encode_client_update,
    encode_update,
    get_codec,
    register_codec,
    unregister_codec,
)

BUILTIN_CODECS = ("none", "fp16", "int8", "topk")
LOSSY_CODECS = ("fp16", "int8", "topk")

#: shared hypothesis strategy: a modest float32 tensor of 1-2 dims
SHAPES = st.sampled_from([(1,), (7,), (16,), (3, 5), (8, 8), (2, 3, 4)])


def arrays(draw, shape, scale=1.0):
    seed = draw(st.integers(0, 2**32 - 1))
    rng = np.random.default_rng(seed)
    return (rng.normal(size=shape) * scale).astype(np.float32)


@st.composite
def float_tensors(draw, scale=1.0):
    return arrays(draw, draw(SHAPES), scale)


def fixed_stream(entropy=1234, spawn_key=(0, 1, 2)):
    return np.random.SeedSequence(entropy=entropy, spawn_key=spawn_key)


# -- registry ---------------------------------------------------------------------------


class TestRegistry:
    def test_builtins_registered(self):
        assert set(BUILTIN_CODECS) <= set(available_codecs())

    @pytest.mark.parametrize(
        "name, cls",
        [("none", PassthroughCodec), ("fp16", Fp16Codec), ("int8", Int8Codec), ("topk", TopKCodec)],
    )
    def test_get_codec_builds_the_registered_class(self, name, cls):
        codec = get_codec(name)
        assert isinstance(codec, cls)
        assert codec.name == name

    def test_get_codec_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown codec"):
            get_codec("bogus")

    def test_register_rejects_name_mismatch(self):
        @dataclasses.dataclass(frozen=True)
        class Misnamed(PassthroughCodec):
            name = "not-misnamed"

        with pytest.raises(ValueError, match="declares name"):
            register_codec("misnamed")(Misnamed)

    def test_register_rejects_duplicate_name(self):
        @dataclasses.dataclass(frozen=True)
        class Impostor(PassthroughCodec):
            name = "none"

        with pytest.raises(ValueError, match="already registered"):
            register_codec("none")(Impostor)
        assert isinstance(get_codec("none"), PassthroughCodec)

    def test_register_and_unregister_plugin_codec(self):
        @dataclasses.dataclass(frozen=True)
        class PluginCodec(PassthroughCodec):
            name = "plugin-test"

        try:
            register_codec("plugin-test")(PluginCodec)
            assert "plugin-test" in available_codecs()
            assert isinstance(get_codec("plugin-test"), PluginCodec)
        finally:
            unregister_codec("plugin-test")
        assert "plugin-test" not in available_codecs()
        unregister_codec("plugin-test")  # unknown names are a no-op


class TestConfigRoundTrip:
    @pytest.mark.parametrize("name", BUILTIN_CODECS)
    def test_to_dict_from_dict_roundtrip(self, name):
        codec = get_codec(name)
        payload = codec.to_dict()
        assert payload["name"] == name
        rebuilt = codec_from_dict(payload)
        assert rebuilt == codec

    def test_non_default_knobs_roundtrip(self):
        codec = TopKCodec(k_fraction=0.25, compress_level=9)
        rebuilt = codec_from_dict(codec.to_dict())
        assert rebuilt == codec
        assert rebuilt.k_fraction == 0.25 and rebuilt.compress_level == 9

    def test_from_dict_requires_name(self):
        with pytest.raises(ValueError, match="name"):
            codec_from_dict({"k_fraction": 0.1})

    def test_from_dict_unknown_name_raises(self):
        with pytest.raises(ValueError, match="unknown codec"):
            codec_from_dict({"name": "bogus"})

    def test_from_dict_unknown_key_raises(self):
        with pytest.raises(ValueError):
            codec_from_dict({"name": "topk", "k_fraction": 0.1, "bogus_knob": 1})

    @pytest.mark.parametrize("k_fraction", [0.0, -0.5, 1.5])
    def test_topk_rejects_bad_k_fraction(self, k_fraction):
        with pytest.raises(ValueError, match="k_fraction"):
            TopKCodec(k_fraction=k_fraction)

    @pytest.mark.parametrize("level", [0, 10])
    def test_bad_compress_level_rejected(self, level):
        with pytest.raises(ValueError, match="compress_level"):
            Int8Codec(compress_level=level)
        with pytest.raises(ValueError, match="compress_level"):
            TopKCodec(compress_level=level)

    @pytest.mark.parametrize("name", BUILTIN_CODECS)
    def test_nominal_bytes_per_param_positive(self, name):
        assert get_codec(name).nominal_bytes_per_param > 0

    def test_topk_nominal_bytes_scale_with_k(self):
        assert TopKCodec(k_fraction=0.5).nominal_bytes_per_param == pytest.approx(4.0)
        assert TopKCodec(k_fraction=0.05).nominal_bytes_per_param < Int8Codec().nominal_bytes_per_param


# -- the codec rounding stream ----------------------------------------------------------


class TestCodecGenerator:
    def test_same_stream_same_draws(self):
        a = codec_generator(fixed_stream()).random(16)
        b = codec_generator(fixed_stream()).random(16)
        assert np.array_equal(a, b)

    def test_different_streams_differ(self):
        a = codec_generator(fixed_stream(spawn_key=(0, 1, 2))).random(16)
        b = codec_generator(fixed_stream(spawn_key=(0, 1, 3))).random(16)
        assert not np.array_equal(a, b)

    def test_disjoint_from_training_stream(self):
        """The codec derives a *child* key, never replaying training draws."""
        stream = fixed_stream()
        training = np.random.default_rng(stream).random(16)
        rounding = codec_generator(stream).random(16)
        assert not np.array_equal(training, rounding)

    def test_spawn_key_is_appended(self):
        stream = fixed_stream(spawn_key=(7,))
        direct = np.random.default_rng(
            np.random.SeedSequence(entropy=stream.entropy, spawn_key=(7, CODEC_SPAWN_KEY))
        ).random(8)
        assert np.array_equal(codec_generator(stream).random(8), direct)


# -- per-codec round-trip error bounds --------------------------------------------------


class TestPassthroughRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(data=st.data())
    def test_bit_exact(self, data):
        value = data.draw(float_tensors())
        encoded = encode_update(PassthroughCodec(), {"w": value}, codec_generator(fixed_stream()))
        decoded = decode_update(encoded)["w"]
        assert decoded.dtype == value.dtype
        assert np.array_equal(decoded.view(np.uint8), value.view(np.uint8))


class TestFp16RoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), scale=st.sampled_from([1e-3, 1.0, 1e3]))
    def test_error_within_one_grid_spacing(self, data, scale):
        value = data.draw(float_tensors(scale=scale))
        encoded = encode_update(Fp16Codec(), {"w": value}, codec_generator(fixed_stream()))
        decoded = decode_update(encoded)["w"].astype(np.float32)
        # stochastic rounding picks one of the two neighbouring float16
        # grid points, so the error is below the local grid spacing
        spacing = np.spacing(np.abs(value).astype(np.float16)).astype(np.float32)
        assert np.all(np.abs(decoded - value) <= spacing + 1e-12)

    def test_grid_values_encode_exactly(self):
        value = np.arange(-8, 8, dtype=np.float32) / 4.0  # exact in float16
        encoded = encode_update(Fp16Codec(), {"w": value}, codec_generator(fixed_stream()))
        assert np.array_equal(decode_update(encoded)["w"].astype(np.float32), value)

    def test_out_of_range_values_clip_to_fp16_max(self):
        value = np.array([1e6, -1e6], dtype=np.float32)
        encoded = encode_update(Fp16Codec(), {"w": value}, codec_generator(fixed_stream()))
        decoded = decode_update(encoded)["w"].astype(np.float32)
        assert np.array_equal(decoded, np.array([65504.0, -65504.0], dtype=np.float32))

    def test_rounding_is_unbiased(self):
        """E[decode(x)] == x: the stochastic-rounding contract, empirically."""
        target = np.float32(0.1003)  # off the float16 grid
        value = np.full(20_000, target, dtype=np.float32)
        encoded = encode_update(Fp16Codec(), {"w": value}, codec_generator(fixed_stream()))
        decoded = decode_update(encoded)["w"].astype(np.float64)
        spacing = float(np.spacing(np.float16(target)))
        # the mean converges at sigma ~ spacing / sqrt(n); allow 5 sigma
        assert abs(decoded.mean() - float(target)) < 5 * spacing / np.sqrt(value.size)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_reencode_is_idempotent(self, data):
        value = data.draw(float_tensors())
        once = decode_update(
            encode_update(Fp16Codec(), {"w": value}, codec_generator(fixed_stream()))
        )["w"]
        twice = decode_update(
            encode_update(Fp16Codec(), {"w": once}, codec_generator(fixed_stream(entropy=99)))
        )["w"]
        assert np.array_equal(once, twice)


class TestInt8RoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), scale=st.sampled_from([1e-4, 1.0, 1e4]))
    def test_error_within_one_lattice_step(self, data, scale):
        value = data.draw(float_tensors(scale=scale))
        encoded = encode_update(Int8Codec(), {"w": value}, codec_generator(fixed_stream()))
        decoded = decode_update(encoded)["w"]
        step = np.float32(np.max(np.abs(value)) / 127.0)
        assert np.all(np.abs(decoded - value) <= step * (1 + 1e-5))

    def test_zero_tensor_is_exact(self):
        value = np.zeros((4, 4), dtype=np.float32)
        encoded = encode_update(Int8Codec(), {"w": value}, codec_generator(fixed_stream()))
        assert np.array_equal(decode_update(encoded)["w"], value)

    def test_peak_magnitude_survives_exactly_in_code_space(self):
        """The element defining the scale maps to code ±127, never clipped away."""
        value = np.array([0.25, -1.0, 0.5], dtype=np.float32)
        encoded = encode_update(Int8Codec(), {"w": value}, codec_generator(fixed_stream()))
        decoded = decode_update(encoded)["w"]
        assert decoded[1] == pytest.approx(-1.0, rel=1e-6)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_reencode_stays_within_one_step(self, data):
        value = data.draw(float_tensors())
        once = decode_update(
            encode_update(Int8Codec(), {"w": value}, codec_generator(fixed_stream()))
        )["w"]
        twice = decode_update(
            encode_update(Int8Codec(), {"w": once}, codec_generator(fixed_stream(entropy=99)))
        )["w"]
        step = float(np.max(np.abs(once))) / 127.0 if once.size else 0.0
        assert np.all(np.abs(twice - once) <= step * (1 + 1e-5))


class TestTopKRoundTrip:
    @settings(max_examples=40, deadline=None)
    @given(data=st.data(), k_fraction=st.sampled_from([0.05, 0.25, 1.0]))
    def test_kept_coordinates_exact_dropped_zero(self, data, k_fraction):
        value = data.draw(float_tensors())
        codec = TopKCodec(k_fraction=k_fraction)
        encoded = encode_update(codec, {"w": value}, codec_generator(fixed_stream()))
        decoded = decode_update(encoded)["w"]
        kept = decoded != 0
        # kept coordinates carry the original value bit-for-bit
        assert np.array_equal(decoded[kept], value[kept])
        k = max(1, int(np.ceil(k_fraction * value.size)))
        assert int(np.count_nonzero(decoded)) <= k
        # magnitude property: every kept entry >= every dropped entry
        if np.any(kept) and np.any(~kept):
            assert np.min(np.abs(value[kept])) >= np.max(np.abs(value[~kept]))

    def test_k_counts_ceil_of_fraction(self):
        value = np.arange(1, 11, dtype=np.float32)
        codec = TopKCodec(k_fraction=0.21)  # ceil(2.1) -> 3 of 10
        encoded = encode_update(codec, {"w": value}, codec_generator(fixed_stream()))
        assert int(np.count_nonzero(decode_update(encoded)["w"])) == 3

    def test_ties_break_to_the_lowest_flat_index(self):
        value = np.ones(8, dtype=np.float32)
        codec = TopKCodec(k_fraction=0.25)  # keep 2 of 8 equal magnitudes
        encoded = encode_update(codec, {"w": value}, codec_generator(fixed_stream()))
        decoded = decode_update(encoded)["w"]
        assert np.array_equal(np.flatnonzero(decoded), [0, 1])

    def test_full_fraction_is_lossless(self):
        value = np.random.default_rng(3).normal(size=12).astype(np.float32)
        codec = TopKCodec(k_fraction=1.0)
        encoded = encode_update(codec, {"w": value}, codec_generator(fixed_stream()))
        assert np.array_equal(decode_update(encoded)["w"], value)

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_reencode_is_idempotent(self, data):
        value = data.draw(float_tensors())
        codec = TopKCodec(k_fraction=0.25)
        once = decode_update(
            encode_update(codec, {"w": value}, codec_generator(fixed_stream()))
        )["w"]
        twice = decode_update(
            encode_update(codec, {"w": once}, codec_generator(fixed_stream(entropy=99)))
        )["w"]
        assert np.array_equal(once, twice)


# -- shape / dtype preservation and self-description ------------------------------------


class TestSelfDescription:
    @pytest.mark.parametrize("name", BUILTIN_CODECS)
    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_shapes_and_dtypes_roundtrip(self, name, data):
        value = data.draw(float_tensors())
        codec = get_codec(name)
        encoded = encode_update(codec, {"w": value}, codec_generator(fixed_stream()))
        decoded = decode_update(encoded)
        assert decoded["w"].shape == value.shape
        assert decoded["w"].dtype == value.dtype
        assert encoded.shapes["w"] == tuple(value.shape)
        assert encoded.dtypes["w"] == value.dtype.str

    @pytest.mark.parametrize("name", BUILTIN_CODECS)
    def test_non_float_tensors_travel_raw_and_exact(self, name):
        counts = np.arange(12, dtype=np.int64).reshape(3, 4)
        codec = get_codec(name)
        encoded = encode_update(codec, {"counts": counts}, codec_generator(fixed_stream()))
        assert encoded.encodings["counts"] == "raw"
        assert np.array_equal(decode_update(encoded)["counts"], counts)

    @pytest.mark.parametrize("name", BUILTIN_CODECS)
    def test_nbytes_is_the_summed_blob_length(self, name):
        update = {
            "w": np.random.default_rng(0).normal(size=(6, 6)).astype(np.float32),
            "b": np.random.default_rng(1).normal(size=6).astype(np.float32),
        }
        encoded = encode_update(get_codec(name), update, codec_generator(fixed_stream()))
        assert encoded.nbytes == sum(len(blob) for blob in encoded.blobs.values())
        assert encoded.raw_nbytes == sum(v.nbytes for v in update.values())

    @pytest.mark.parametrize("name", LOSSY_CODECS)
    def test_lossy_payloads_are_smaller_than_raw(self, name):
        update = {"w": np.random.default_rng(2).normal(size=(64, 64)).astype(np.float32)}
        encoded = encode_update(get_codec(name), update, codec_generator(fixed_stream()))
        assert encoded.nbytes < encoded.raw_nbytes

    def test_unknown_encoding_tag_rejected(self):
        encoded = EncodedUpdate(
            codec="bogus",
            blobs={"w": b"\x00" * 4},
            encodings={"w": "bogus"},
            shapes={"w": (1,)},
            dtypes={"w": "<f4"},
        )
        with pytest.raises(ValueError, match="unknown tensor encoding"):
            decode_update(encoded)


# -- determinism ------------------------------------------------------------------------


class TestDeterminism:
    @pytest.mark.parametrize("name", BUILTIN_CODECS)
    def test_same_stream_bit_identical_blobs(self, name):
        update = {"w": np.random.default_rng(5).normal(size=(16, 16)).astype(np.float32)}
        codec = get_codec(name)
        first = encode_update(codec, update, codec_generator(fixed_stream()))
        second = encode_update(codec, update, codec_generator(fixed_stream()))
        assert first.blobs == second.blobs

    @pytest.mark.parametrize("name", ["fp16", "int8"])
    def test_different_streams_round_differently(self, name):
        """Stochastic rounding actually uses the stream (payloads differ)."""
        update = {"w": np.random.default_rng(5).normal(size=(32, 32)).astype(np.float32)}
        codec = get_codec(name)
        first = encode_update(codec, update, codec_generator(fixed_stream(spawn_key=(1,))))
        second = encode_update(codec, update, codec_generator(fixed_stream(spawn_key=(2,))))
        assert first.blobs != second.blobs

    def test_encode_client_update_deterministic_end_to_end(self):
        rng = np.random.default_rng(9)
        reference = {"w": rng.normal(size=(8, 8)).astype(np.float32)}
        trained = {"w": reference["w"] + rng.normal(size=(8, 8)).astype(np.float32) * 0.01}
        first = encode_client_update(TopKCodec(), trained, reference, fixed_stream(), client_id=3)
        second = encode_client_update(TopKCodec(), trained, reference, fixed_stream(), client_id=3)
        assert first.blobs == second.blobs
        assert first.client_id == second.client_id == 3
        for name in first.residual:
            assert np.array_equal(first.residual[name], second.residual[name])


# -- the client-side encode pass and error feedback -------------------------------------


class TestEncodeClientUpdate:
    def _pair(self, shape=(6, 6), seed=11):
        rng = np.random.default_rng(seed)
        reference = {"w": rng.normal(size=shape).astype(np.float32)}
        trained = {"w": reference["w"] + rng.normal(size=shape).astype(np.float32) * 0.05}
        return trained, reference

    def test_passthrough_reconstructs_trained_exactly(self):
        trained, reference = self._pair()
        encoded = encode_client_update(PassthroughCodec(), trained, reference, fixed_stream())
        rebuilt = apply_encoded_update(encoded, reference)
        assert np.array_equal(rebuilt["w"], trained["w"])

    def test_prefix_sliced_reference_supported(self):
        """A submodel trains a leading block of the full tensor; the full
        reference is prefix-sliced on both encode and decode."""
        rng = np.random.default_rng(4)
        full = {"w": rng.normal(size=(8, 8)).astype(np.float32)}
        trained = {"w": full["w"][:4, :6] + np.float32(0.25)}
        encoded = encode_client_update(PassthroughCodec(), trained, full, fixed_stream())
        sliced_reference = {"w": full["w"][:4, :6]}
        rebuilt = apply_encoded_update(encoded, sliced_reference)
        assert np.array_equal(rebuilt["w"], trained["w"])

    def test_reference_smaller_than_trained_raises(self):
        trained = {"w": np.zeros((4, 4), dtype=np.float32)}
        reference = {"w": np.zeros((2, 4), dtype=np.float32)}
        with pytest.raises(ValueError, match="shape"):
            encode_client_update(PassthroughCodec(), trained, reference, fixed_stream())

    def test_apply_shape_mismatch_raises(self):
        trained, reference = self._pair()
        encoded = encode_client_update(PassthroughCodec(), trained, reference, fixed_stream())
        with pytest.raises(ValueError, match="shape"):
            apply_encoded_update(encoded, {"w": np.zeros((3, 3), dtype=np.float32)})

    def test_lossless_codec_attaches_no_residual(self):
        trained, reference = self._pair()
        encoded = encode_client_update(PassthroughCodec(), trained, reference, fixed_stream())
        assert encoded.residual is None
        encoded = encode_client_update(Int8Codec(), trained, reference, fixed_stream())
        assert encoded.residual is None  # int8 does not use error feedback

    @settings(max_examples=25, deadline=None)
    @given(data=st.data())
    def test_topk_residual_reconstructs_the_update_exactly(self, data):
        """decoded + residual == delta (+ previous residual): EF loses nothing."""
        shape = data.draw(SHAPES)
        reference = {"w": arrays(data.draw, shape)}
        trained = {"w": reference["w"] + arrays(data.draw, shape, scale=0.1)}
        encoded = encode_client_update(TopKCodec(), trained, reference, fixed_stream())
        decoded = decode_update(encoded)["w"]
        delta = trained["w"] - reference["w"]
        # top-k keeps or zeroes each coordinate, so the sum is float-exact
        assert np.array_equal(decoded + encoded.residual["w"], delta)
        assert encoded.residual["w"].dtype == np.float32

    def test_residual_feeds_the_next_round(self):
        trained, reference = self._pair()
        first = encode_client_update(TopKCodec(), trained, reference, fixed_stream())
        second = encode_client_update(
            TopKCodec(), trained, reference, fixed_stream(entropy=77), residual=first.residual
        )
        decoded = decode_update(second)["w"]
        delta = trained["w"] - reference["w"]
        carried = delta + first.residual["w"]
        assert np.array_equal(decoded + second.residual["w"], carried)

    def test_iterated_residual_norm_stays_bounded(self):
        """EF convergence: the residual does not grow without bound."""
        rng = np.random.default_rng(21)
        delta = rng.normal(size=256).astype(np.float32) * 0.01
        reference = {"w": np.zeros(256, dtype=np.float32)}
        trained = {"w": delta}
        codec = TopKCodec(k_fraction=0.05)
        residual = None
        delta_norm = float(np.linalg.norm(delta))
        norms = []
        for round_index in range(50):
            encoded = encode_client_update(
                codec, trained, reference, fixed_stream(entropy=round_index), residual=residual
            )
            residual = encoded.residual
            norms.append(float(np.linalg.norm(residual["w"])))
        # the compression error contracts: the carry saturates well below
        # the trivial (n/k) blow-up and stops growing at the tail
        assert max(norms) < 20 * delta_norm
        assert abs(norms[-1] - norms[-10]) < 0.5 * delta_norm

    def test_residual_prefix_sliced_for_smaller_submodels(self):
        """A full-shape banked residual is cut to the trained slice."""
        rng = np.random.default_rng(6)
        full = {"w": rng.normal(size=(8, 8)).astype(np.float32)}
        residual = {"w": np.full((8, 8), 0.5, dtype=np.float32)}
        trained = {"w": full["w"][:4, :4] + np.float32(0.1)}
        encoded = encode_client_update(
            TopKCodec(k_fraction=1.0), trained, full, fixed_stream(), residual=residual
        )
        decoded = decode_update(encoded)["w"]
        delta = trained["w"] - full["w"][:4, :4]
        assert decoded.shape == (4, 4)
        assert np.allclose(decoded + encoded.residual["w"], delta + 0.5, atol=0)
