"""Unit tests of the execution engine: ordering, errors, factory, RNG streams."""

import pickle

import numpy as np
import pytest

from repro.core.config import FederatedConfig
from repro.engine import (
    EXECUTOR_NAMES,
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    client_stream,
    create_executor,
    default_max_workers,
    spawn_streams,
)

ALL_EXECUTORS = ["serial", "thread", "process"]


class IndexTask:
    """Returns its index (plus a marker so results are distinguishable)."""

    def __init__(self, index: int):
        self.index = index

    def run(self) -> tuple[str, int]:
        return ("result", self.index)


class FailingTask:
    def __init__(self, message: str = "task exploded"):
        self.message = message

    def run(self):
        raise ValueError(self.message)


class StreamDrawTask:
    """Draws from its own stream — used to prove worker-independence."""

    def __init__(self, stream: np.random.SeedSequence):
        self.rng_stream = stream

    def run(self) -> list[int]:
        return np.random.default_rng(self.rng_stream).integers(0, 1_000_000, 4).tolist()


@pytest.mark.parametrize("name", ALL_EXECUTORS)
class TestExecutorContract:
    def test_map_preserves_submission_order(self, name):
        with create_executor(name, max_workers=3) as executor:
            results = executor.map([IndexTask(i) for i in range(17)])
        assert results == [("result", i) for i in range(17)]

    def test_empty_batch(self, name):
        with create_executor(name, max_workers=2) as executor:
            assert executor.map([]) == []

    def test_task_exception_propagates(self, name):
        with create_executor(name, max_workers=2) as executor:
            with pytest.raises(ValueError, match="task exploded"):
                executor.map([IndexTask(0), FailingTask(), IndexTask(2)])

    def test_reusable_across_rounds_and_after_shutdown(self, name):
        executor = create_executor(name, max_workers=2)
        try:
            assert executor.map([IndexTask(0)]) == [("result", 0)]
            executor.shutdown()
            executor.shutdown()  # idempotent
            # pools rebuild lazily after shutdown
            assert executor.map([IndexTask(1)]) == [("result", 1)]
        finally:
            executor.shutdown()

    def test_stream_tasks_identical_across_executors(self, name):
        tasks = [StreamDrawTask(client_stream(0, 2, cid)) for cid in range(5)]
        reference = [task.run() for task in tasks]
        with create_executor(name, max_workers=4) as executor:
            assert executor.map(tasks) == reference


class TestFactory:
    def test_names(self):
        assert tuple(EXECUTOR_NAMES) == ("serial", "thread", "process", "remote")
        assert isinstance(create_executor("serial"), SerialExecutor)
        assert isinstance(create_executor("thread"), ThreadExecutor)
        assert isinstance(create_executor("process"), ProcessExecutor)

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="executor must be one of"):
            create_executor("gpu")

    def test_bad_worker_count_rejected(self):
        for name in ALL_EXECUTORS:
            with pytest.raises(ValueError, match="max_workers"):
                create_executor(name, max_workers=0)

    def test_default_worker_resolution(self):
        assert default_max_workers() >= 1
        assert SerialExecutor().effective_workers == 1
        assert ThreadExecutor(max_workers=7).effective_workers == 7
        assert ThreadExecutor().effective_workers == default_max_workers()


class TestConfigValidation:
    def test_executor_field_validated(self):
        with pytest.raises(ValueError, match="executor"):
            FederatedConfig(executor="gpu")

    def test_max_workers_validated(self):
        with pytest.raises(ValueError, match="max_workers"):
            FederatedConfig(max_workers=0)

    def test_round_trips_with_engine_fields(self):
        config = FederatedConfig(num_rounds=3, executor="process", max_workers=4)
        assert FederatedConfig.from_dict(config.to_dict()) == config

    def test_legacy_payload_without_engine_fields_still_loads(self):
        payload = {"num_rounds": 3, "clients_per_round": 2, "eval_every": 1}
        config = FederatedConfig.from_dict(payload)
        assert config.executor == "serial" and config.max_workers is None


class TestRngStreams:
    def test_client_stream_matches_historical_serial_rng(self):
        """The engine streams must reproduce the pre-engine sequential RNGs
        (``default_rng((seed, round, client))``) bit for bit."""
        legacy = np.random.default_rng((3, 7, 5)).integers(0, 2**31, 16)
        engine = np.random.default_rng(client_stream(3, 7, 5)).integers(0, 2**31, 16)
        assert np.array_equal(legacy, engine)

    def test_streams_differ_across_clients_and_rounds(self):
        draws = {
            (r, c): tuple(np.random.default_rng(client_stream(0, r, c)).integers(0, 2**31, 4))
            for r in range(3)
            for c in range(3)
        }
        assert len(set(draws.values())) == len(draws)

    def test_negative_indices_rejected(self):
        with pytest.raises(ValueError):
            client_stream(0, -1, 0)
        with pytest.raises(ValueError):
            client_stream(0, 0, -1)

    def test_spawned_streams_deterministic_and_independent(self):
        parent = client_stream(1, 2, 3)
        first = spawn_streams(parent, 4)
        second = spawn_streams(client_stream(1, 2, 3), 4)
        draws_first = [np.random.default_rng(s).integers(0, 2**31, 4).tolist() for s in first]
        draws_second = [np.random.default_rng(s).integers(0, 2**31, 4).tolist() for s in second]
        assert draws_first == draws_second  # pure function of the parent identity
        assert len({tuple(d) for d in draws_first}) == 4  # children independent

    def test_spawn_is_insensitive_to_prior_spawns(self):
        parent = client_stream(1, 2, 3)
        spawn_streams(parent, 2)
        again = spawn_streams(parent, 2)
        reference = spawn_streams(client_stream(1, 2, 3), 2)
        assert [s.spawn_key for s in again] == [s.spawn_key for s in reference]

    def test_streams_pickle(self):
        stream = client_stream(0, 1, 2)
        clone = pickle.loads(pickle.dumps(stream))
        assert np.array_equal(
            np.random.default_rng(stream).integers(0, 2**31, 8),
            np.random.default_rng(clone).integers(0, 2**31, 8),
        )
