"""Determinism regression: same seed + same executor ⇒ identical runs.

Complements the parity suite (which compares executors *against each
other*): here each executor is compared against *itself* across two
independent ``run()`` invocations, end-to-end through the public
experiment API.
"""

import pytest

from repro.experiments import prepare_experiment, run_algorithm
from repro.experiments.settings import ExperimentSetting

from test_parity import build_algorithm, history_fingerprint

EXECUTORS = ["serial", "thread", "process"]


@pytest.mark.parametrize("executor", EXECUTORS)
def test_two_runs_produce_identical_round_records(easy_setup, executor):
    first = build_algorithm("adaptivefl", easy_setup, executor)
    first.run()
    second = build_algorithm("adaptivefl", easy_setup, executor)
    second.run()
    assert history_fingerprint(first) == history_fingerprint(second)


@pytest.mark.parametrize("executor", ["serial", "thread"])
def test_api_level_runs_reproducible(executor):
    """Through prepare_experiment/run_algorithm: records match field by field."""
    setting = ExperimentSetting(
        dataset="cifar10",
        model="simple_cnn",
        scale="ci",
        seed=11,
        executor=executor,
        max_workers=2,
        overrides={"num_rounds": 2, "eval_every": 2},
    )
    histories = []
    for _ in range(2):
        result = run_algorithm("adaptivefl", prepare_experiment(setting))
        histories.append(
            [
                record.to_dict()
                | {
                    "selected": list(record.selected_clients),
                    "dispatched": list(record.dispatched),
                    "returned": list(record.returned),
                }
                for record in result.history.records
            ]
        )
    assert histories[0] == histories[1]


def test_injected_executor_is_caller_owned_across_runs(easy_setup):
    """set_executor keeps the caller's executor attached and alive through
    run() (which only closes executors it built itself from the config)."""
    from repro.engine import SerialExecutor

    algorithm = build_algorithm("adaptivefl", easy_setup, "serial")
    injected = SerialExecutor()
    algorithm.set_executor(injected)
    algorithm.run(num_rounds=1)
    assert algorithm.executor is injected
    algorithm.run(num_rounds=1)
    assert algorithm.executor is injected
    algorithm.set_executor(None)  # drop back to the config-built executor
    assert algorithm.executor is not injected


def test_config_built_executor_released_after_run(easy_setup):
    algorithm = build_algorithm("adaptivefl", easy_setup, "thread")
    algorithm.run(num_rounds=1)
    assert algorithm._executor is None  # closed by run(); rebuilt lazily


def test_resumed_run_extends_deterministically(easy_setup):
    """run() twice on one instance == one longer run (executor is rebuilt
    after the first run closes it)."""
    split = build_algorithm("adaptivefl", easy_setup, "thread")
    split.run(num_rounds=1)
    split.run(num_rounds=1)
    joint = build_algorithm("adaptivefl", easy_setup, "thread")
    joint.run(num_rounds=2)
    split_rounds = [(r.round_index, r.selected_clients, r.train_loss) for r in split.history.records]
    joint_rounds = [(r.round_index, r.selected_clients, r.train_loss) for r in joint.history.records]
    assert split_rounds == joint_rounds
