"""Serial-parity regression suite (the engine's core guarantee).

Every executor must produce **bit-identical** training histories to
:class:`~repro.engine.serial.SerialExecutor` at a fixed seed: identical
client selections, dispatched/returned submodels, train losses,
accuracies and global model weights.  Exact float equality is intentional
— parallel execution must not change a single bit of the simulation.
"""

from dataclasses import replace

import numpy as np
import pytest

from repro.baselines import HeteroFL
from repro.core.config import AdaptiveFLConfig, FederatedConfig, LocalTrainingConfig
from repro.core.server import AdaptiveFL

EXECUTORS = ["serial", "thread", "process"]
ALGORITHMS = ["adaptivefl", "heterofl"]

ROUNDS = 2
FEDERATED = FederatedConfig(num_rounds=ROUNDS, clients_per_round=4, eval_every=2)
LOCAL = LocalTrainingConfig(local_epochs=1, batch_size=25, max_batches_per_epoch=3)


def build_algorithm(name: str, easy_setup, executor: str) -> AdaptiveFL | HeteroFL:
    federated = replace(FEDERATED, executor=executor, max_workers=3)
    kwargs = dict(
        architecture=easy_setup["arch"],
        train_dataset=easy_setup["train"],
        partition=easy_setup["partition"],
        test_dataset=easy_setup["test"],
        profiles=easy_setup["profiles"],
        resource_model=easy_setup["resource_model"],
        seed=0,
    )
    if name == "adaptivefl":
        return AdaptiveFL(
            algorithm_config=AdaptiveFLConfig(federated=federated, local=LOCAL, pool=easy_setup["pool"]),
            **kwargs,
        )
    return HeteroFL(federated_config=federated, local_config=LOCAL, **kwargs)


def history_fingerprint(algorithm) -> list[dict]:
    """Everything a round produced, in exactly comparable form."""
    fingerprint = []
    for record in algorithm.history.records:
        fingerprint.append(
            {
                "round": record.round_index,
                "selected": list(record.selected_clients),
                "dispatched": list(record.dispatched),
                "returned": list(record.returned),
                "train_loss": record.train_loss,
                "full_accuracy": record.full_accuracy,
                "avg_accuracy": record.avg_accuracy,
                "level_accuracies": dict(record.level_accuracies),
                "communication_waste": record.communication_waste,
            }
        )
    return fingerprint


@pytest.fixture(scope="module")
def serial_reference(easy_setup):
    """Histories + final weights of the serial path, one per algorithm."""
    reference = {}
    for name in ALGORITHMS:
        algorithm = build_algorithm(name, easy_setup, "serial")
        algorithm.run()
        reference[name] = (history_fingerprint(algorithm), algorithm.global_state)
    return reference


# the executor parametrization is the whole id on purpose: CI's parity matrix
# filters with `-k "<executor>"`, so the function name must not contain one
@pytest.mark.parametrize("name", ALGORITHMS)
@pytest.mark.parametrize("executor", EXECUTORS)
def test_history_bit_identical(easy_setup, serial_reference, name, executor):
    algorithm = build_algorithm(name, easy_setup, executor)
    algorithm.run()
    expected_history, expected_state = serial_reference[name]

    # exact equality, including float fields: parity means bit-identical
    assert history_fingerprint(algorithm) == expected_history

    assert set(algorithm.global_state) == set(expected_state)
    for key, value in algorithm.global_state.items():
        assert np.array_equal(value, expected_state[key]), f"weights differ in {key!r}"


@pytest.mark.parametrize("executor", ["thread", "process"])
def test_worker_count_does_not_change_history(easy_setup, serial_reference, executor):
    """1-worker and many-worker pools agree with serial (scheduling-proof)."""
    expected_history, _ = serial_reference["adaptivefl"]
    for workers in (1, 4):
        federated = replace(FEDERATED, executor=executor, max_workers=workers)
        algorithm = AdaptiveFL(
            architecture=easy_setup["arch"],
            train_dataset=easy_setup["train"],
            partition=easy_setup["partition"],
            test_dataset=easy_setup["test"],
            profiles=easy_setup["profiles"],
            resource_model=easy_setup["resource_model"],
            algorithm_config=AdaptiveFLConfig(federated=federated, local=LOCAL, pool=easy_setup["pool"]),
            seed=0,
        )
        algorithm.run()
        assert history_fingerprint(algorithm) == expected_history, f"{executor} x{workers} diverged"
