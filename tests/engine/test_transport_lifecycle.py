"""Regression tests for transport lifecycle bugs the networked path flushed out.

Three distinct bugs, each with its own reproduction:

1. ``StateStore.publish`` used to unlink the *previous* version's spill
   file the moment a new version was published — while outstanding
   ``StateHandle`` objects (stragglers mid-round, networked clients
   fetching late) could still reference it.  Spill files are now
   retained until ``close()`` or an explicit ``release_below``.
2. ``StateHandle.load`` used to cache whatever version it had just
   read, so an out-of-order load of an *older* version clobbered the
   newer cached one — every subsequent task then paid a reload (or, on
   a networked worker, a wire fetch).  The cache now only moves
   forward per store.
3. ``StateStore.__del__`` called ``close()`` unguarded, which during
   interpreter teardown can hit half-torn-down module globals and
   raise from a finaliser.
"""

import gc
import os
import pickle

import numpy as np
import pytest

from repro.engine import transport
from repro.engine.transport import StateHandle, StateStore, server_state_bytes, set_state_fetcher


def make_state(value: float) -> dict:
    return {"w": np.full((3, 2), value, dtype=np.float32), "b": np.arange(4, dtype=np.float32) + value}


def assert_states_equal(left, right) -> None:
    assert set(left) == set(right)
    for key in left:
        np.testing.assert_array_equal(left[key], right[key])


def reload_handle(handle: StateHandle) -> StateHandle:
    """Pickle round-trip: what a worker on the far side of a pipe holds."""
    return pickle.loads(pickle.dumps(handle))


@pytest.fixture(autouse=True)
def fresh_worker_cache():
    transport._WORKER_STATE_CACHE.clear()
    yield
    transport._WORKER_STATE_CACHE.clear()


# -- bug 1: spill retention ---------------------------------------------------------------
def test_old_version_loads_after_new_publish():
    """A v1 handle must still resolve after v2 is published (the old unlink bug)."""
    store = StateStore("retention")
    try:
        v1 = reload_handle(store.publish(make_state(1.0), spill=True))
        v2 = reload_handle(store.publish(make_state(2.0), spill=True))
        # a straggler resolving v1 from disk after v2 went out
        assert_states_equal(v1.load(), make_state(1.0))
        assert_states_equal(v2.load(), make_state(2.0))
    finally:
        store.close()


def test_release_below_unlinks_only_older_versions():
    store = StateStore("release")
    try:
        h1 = store.publish(make_state(1.0), spill=True)
        h2 = store.publish(make_state(2.0), spill=True)
        h3 = store.publish(make_state(3.0), spill=True)
        store.release_below(3)
        assert not os.path.exists(h1.path)
        assert not os.path.exists(h2.path)
        assert os.path.exists(h3.path)
        with pytest.raises(KeyError):
            store.version_bytes(1)
        assert pickle.loads(store.version_bytes(3))["w"][0, 0] == np.float32(3.0)
    finally:
        store.close()


def test_close_removes_every_retained_spill():
    store = StateStore("close-all")
    handles = [store.publish(make_state(float(i)), spill=True) for i in range(3)]
    spill_dir = os.path.dirname(handles[0].path)
    store.close()
    for handle in handles:
        assert not os.path.exists(handle.path)
    assert not os.path.exists(spill_dir)
    store.close()  # idempotent


# -- bug 2: monotonic worker cache --------------------------------------------------------
def test_out_of_order_load_does_not_clobber_newer_cache():
    store = StateStore("monotonic")
    try:
        v1 = reload_handle(store.publish(make_state(1.0), spill=True))
        v2 = reload_handle(store.publish(make_state(2.0), spill=True))
        assert_states_equal(v2.load(), make_state(2.0))
        cached_v2 = transport._WORKER_STATE_CACHE[store.store_id][1]

        # a straggler loads v1 late: correct data returned...
        assert_states_equal(v1.load(), make_state(1.0))
        # ...but the cache still holds v2 (same object, no reload)
        version, state = transport._WORKER_STATE_CACHE[store.store_id]
        assert version == 2
        assert state is cached_v2
        assert v2.load() is cached_v2
    finally:
        store.close()


def test_newer_load_still_replaces_older_cache():
    store = StateStore("forward")
    try:
        v1 = reload_handle(store.publish(make_state(1.0), spill=True))
        v2 = reload_handle(store.publish(make_state(2.0), spill=True))
        assert_states_equal(v1.load(), make_state(1.0))
        assert_states_equal(v2.load(), make_state(2.0))
        assert transport._WORKER_STATE_CACHE[store.store_id][0] == 2
    finally:
        store.close()


# -- bug 3: finaliser safety --------------------------------------------------------------
def test_close_survives_interpreter_teardown_globals(monkeypatch):
    """close() during shutdown, when the os module global is torn down."""
    store = StateStore("teardown")
    handle = store.publish(make_state(1.0), spill=True)
    path = handle.path
    monkeypatch.setattr(transport, "os", None)
    store.close()  # must not raise, drops bookkeeping only
    monkeypatch.undo()
    assert os.path.exists(path)  # nothing unlinked without os
    os.unlink(path)
    os.rmdir(os.path.dirname(path))


def test_del_never_raises(monkeypatch):
    store = StateStore("finaliser")
    store.publish(make_state(1.0), spill=True)

    def explode():
        raise RuntimeError("boom from close")

    monkeypatch.setattr(store, "close", explode)
    store.__del__()  # the finaliser swallows everything
    monkeypatch.undo()
    store.close()


# -- networked additions: registry + fetcher hook -----------------------------------------
def test_server_state_bytes_serves_retained_versions():
    store = StateStore("registry")
    try:
        store.publish(make_state(1.0), spill=True)
        store.publish(make_state(2.0), spill=True)
        assert_states_equal(pickle.loads(server_state_bytes(store.store_id, 1)), make_state(1.0))
        assert_states_equal(pickle.loads(server_state_bytes(store.store_id, 2)), make_state(2.0))
        with pytest.raises(KeyError):
            server_state_bytes(store.store_id, 99)
    finally:
        store.close()


def test_server_store_registry_is_weak():
    store = StateStore("weak")
    store_id = store.store_id
    store.close()
    del store
    gc.collect()
    with pytest.raises(KeyError):
        server_state_bytes(store_id, 1)


def test_state_fetcher_resolves_cache_misses():
    calls = []

    def fetcher(store_id, version):
        calls.append((store_id, version))
        return make_state(float(version))

    handle = StateHandle("fetched-0", 3, None, None)
    set_state_fetcher(fetcher)
    try:
        assert_states_equal(handle.load(), make_state(3.0))
        assert calls == [("fetched-0", 3)]
        # second load hits the worker cache, not the wire
        handle.load()
        assert calls == [("fetched-0", 3)]
    finally:
        set_state_fetcher(None)


def test_state_fetcher_takes_precedence_over_server_side_path(tmp_path):
    """On a networked worker the spill path names a *server* file — never open it."""
    bogus = tmp_path / "does-not-exist.pkl"
    handle = StateHandle("fetched-1", 1, str(bogus), None)
    set_state_fetcher(lambda store_id, version: make_state(7.0))
    try:
        assert_states_equal(handle.load(), make_state(7.0))
    finally:
        set_state_fetcher(None)