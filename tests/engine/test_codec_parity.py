"""Cross-executor parity and bounded accuracy of the lossy transport tier.

The exact transports promise bit-identical results across executors; the
lossy codecs relax accuracy, **not** determinism.  This suite pins both
halves of that contract:

* **Lossy-but-reproducible** — for a fixed codec and seed, the serial,
  thread and process executors produce bit-identical histories and final
  weights (the codec rounding stream is keyed on ``(seed, round,
  client)``, never on scheduling).
* **Bounded accuracy** — a lossy run's final accuracy stays within a
  loose tolerance of the exact same-seed baseline (the compression noise
  must not wreck learning at test scale).
* **Honest accounting** — across a real pickle boundary, every round's
  ``bytes_up`` equals the summed true encoded payload sizes observed on
  the wire-facing executor, and lossy uplinks are a fraction of exact
  delta uploads.

Test ids contain the executor name on purpose: CI's executor-parity
matrix filters ``tests/engine`` with ``-k "serial|process|remote"``.
"""

from __future__ import annotations

import pickle
import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.core.config import AdaptiveFLConfig, FederatedConfig, LocalTrainingConfig
from repro.core.server import AdaptiveFL
from repro.engine.base import Executor, run_task
from repro.engine.codecs import EncodedUpdate

REPO_ROOT = Path(__file__).resolve().parents[2]

LOSSY_CODECS = ["fp16", "int8", "topk"]
EXECUTORS = ["thread", "process"]

ROUNDS = 3
FEDERATED = FederatedConfig(num_rounds=ROUNDS, clients_per_round=4, eval_every=3)
LOCAL = LocalTrainingConfig(local_epochs=1, batch_size=25, max_batches_per_epoch=3)

#: max absolute final-accuracy drift a lossy codec may show at test scale
#: (top-k at 5% density trails the exact run early; error feedback closes
#: the gap over more rounds than this 3-round federation trains)
ACCURACY_TOLERANCE = 0.35
#: chance level of the easy_setup 4-class task
CHANCE_ACCURACY = 0.25


def build_algorithm(easy_setup, codec: str, executor: str = "serial") -> AdaptiveFL:
    federated = replace(FEDERATED, transport_codec=codec, executor=executor, max_workers=2)
    return AdaptiveFL(
        algorithm_config=AdaptiveFLConfig(federated=federated, local=LOCAL, pool=easy_setup["pool"]),
        architecture=easy_setup["arch"],
        train_dataset=easy_setup["train"],
        partition=easy_setup["partition"],
        test_dataset=easy_setup["test"],
        profiles=easy_setup["profiles"],
        resource_model=easy_setup["resource_model"],
        seed=0,
    )


def fingerprint(algorithm) -> list[dict]:
    return [record.to_dict() for record in algorithm.history.records]


@pytest.fixture(scope="module")
def codec_serial_reference(easy_setup):
    """One serial run per codec (plus the exact baseline), shared by the suite."""
    reference = {}
    for codec in ["none", *LOSSY_CODECS]:
        algorithm = build_algorithm(easy_setup, codec)
        algorithm.run()
        reference[codec] = (fingerprint(algorithm), algorithm.global_state, algorithm.history)
    return reference


@pytest.mark.parametrize("executor", EXECUTORS)
@pytest.mark.parametrize("codec", LOSSY_CODECS)
def test_lossy_runs_identical_across_executors(easy_setup, codec_serial_reference, codec, executor):
    """serial/thread/process agree bit-for-bit under every lossy codec."""
    expected_history, expected_state, _ = codec_serial_reference[codec]
    algorithm = build_algorithm(easy_setup, codec, executor)
    algorithm.run()
    assert fingerprint(algorithm) == expected_history
    assert set(algorithm.global_state) == set(expected_state)
    for key, value in algorithm.global_state.items():
        assert np.array_equal(value, expected_state[key]), f"weights differ in {key!r}"


@pytest.mark.parametrize("codec", LOSSY_CODECS)
def test_lossy_accuracy_within_tolerance_of_serial_exact_run(codec_serial_reference, codec):
    """Compression noise must not wreck learning (bounded-accuracy contract)."""
    _, _, exact_history = codec_serial_reference["none"]
    _, _, lossy_history = codec_serial_reference[codec]
    exact = exact_history.final_accuracy("full")
    lossy = lossy_history.final_accuracy("full")
    assert abs(lossy - exact) <= ACCURACY_TOLERANCE, f"{codec}: {lossy} vs exact {exact}"
    assert lossy > CHANCE_ACCURACY + 0.1, f"{codec} run did not learn: {lossy}"


@pytest.mark.parametrize("codec", LOSSY_CODECS)
def test_lossy_serial_uplink_bytes_beat_exact_delta(codec_serial_reference, codec):
    """The codec actually cuts the recorded (true encoded) uplink bytes."""
    exact_records, _, _ = codec_serial_reference["none"]
    lossy_records, _, _ = codec_serial_reference[codec]
    exact_up = sum(record["bytes_up"] for record in exact_records)
    lossy_up = sum(record["bytes_up"] for record in lossy_records)
    assert 0 < lossy_up < exact_up
    if codec in ("int8", "topk"):
        assert exact_up / lossy_up >= 2.0


class EncodedByteAuditExecutor(Executor):
    """Serial executor that crosses a real pickle boundary and records the
    true encoded payload bytes of every uploaded result, per map() call."""

    name = "encoded-byte-audit"
    is_interprocess = True

    def __init__(self):
        self.rounds: list[int] = []

    def map(self, tasks):
        results = []
        observed = 0
        for task in tasks:
            clone = pickle.loads(pickle.dumps(task, protocol=pickle.HIGHEST_PROTOCOL))
            result = pickle.loads(
                pickle.dumps(run_task(clone), protocol=pickle.HIGHEST_PROTOCOL)
            )
            state = getattr(result, "state", None)
            assert isinstance(state, EncodedUpdate), "codec run must upload EncodedUpdate"
            observed += state.nbytes
            results.append(result)
        self.rounds.append(observed)
        return results


@pytest.mark.parametrize("codec", LOSSY_CODECS)
def test_recorded_bytes_match_wire_observed_sizes_serial_loopback(easy_setup, codec):
    """``RoundRecord.bytes_up`` is exactly what crossed the executor boundary."""
    algorithm = build_algorithm(easy_setup, codec)
    audit = EncodedByteAuditExecutor()
    algorithm.set_executor(audit)
    algorithm.run()
    recorded = [record.bytes_up for record in algorithm.history.records]
    assert len(audit.rounds) == len(recorded)
    assert recorded == audit.rounds


def test_remote_executor_matches_serial_under_topk(easy_setup, codec_serial_reference):
    """The networked path (schema-3 ``encoded_delta`` frames) stays on the
    serial lossy history bit-for-bit, and the coordinator's compression
    counters see the true encoded bytes."""
    from repro.serve.executor import RemoteExecutor
    from repro.serve.options import ServeOptions

    expected_history, expected_state, _ = codec_serial_reference["topk"]
    executor = RemoteExecutor(
        options=ServeOptions(port=0, min_clients=2, connect_timeout=60.0, straggler_timeout=60.0)
    )
    host, port = executor.start()
    clients = [
        subprocess.Popen(
            [
                sys.executable, "-m", "repro", "client",
                "--host", host, "--port", str(port), "--name", f"codec-w{i}",
                "--backoff-base", "0.05",
            ],
            cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        for i in range(2)
    ]
    try:
        algorithm = build_algorithm(easy_setup, "topk", "remote")
        algorithm.set_executor(executor)
        algorithm.run()
        coordinator = executor._coordinator
        assert coordinator is not None
        encoded_bytes = coordinator.codec_bytes_up.value
        raw_bytes = coordinator.codec_raw_bytes_up.value
    finally:
        executor.shutdown()
        for process in clients:
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=15)

    assert fingerprint(algorithm) == expected_history
    for key, value in algorithm.global_state.items():
        assert np.array_equal(value, expected_state[key]), f"weights differ in {key!r}"
    # the encoded_delta frames carried their true byte accounting
    expected_up = sum(record["bytes_up"] for record in expected_history)
    assert encoded_bytes == expected_up
    assert raw_bytes > encoded_bytes > 0
