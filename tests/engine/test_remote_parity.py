"""Serial parity of the networked path (``repro.serve``) over loopback.

Same guarantee as ``test_parity.py``, one executor further out: two real
``repro client`` worker *processes* connected to a
:class:`~repro.serve.executor.RemoteExecutor` over loopback sockets
must reproduce the serial histories and final weights **bit-identically**
— for AdaptiveFL and HeteroFL, across three rounds, and through one
injected mid-run disconnect (a client drops its connection after
computing a result without uploading it, forcing the coordinator down
the requeue/reconnect path).

The test ids contain "remote" on purpose: CI's executor-parity matrix
filters this suite with ``-k remote``.
"""

import subprocess
import sys
from dataclasses import replace
from pathlib import Path

import numpy as np
import pytest

from repro.baselines import HeteroFL
from repro.core.config import AdaptiveFLConfig, FederatedConfig, LocalTrainingConfig
from repro.core.server import AdaptiveFL
from repro.serve.executor import RemoteExecutor
from repro.serve.options import ServeOptions

ALGORITHMS = ["adaptivefl", "heterofl"]

ROUNDS = 3
FEDERATED = FederatedConfig(num_rounds=ROUNDS, clients_per_round=4, eval_every=3)
LOCAL = LocalTrainingConfig(local_epochs=1, batch_size=25, max_batches_per_epoch=3)

REPO_ROOT = Path(__file__).resolve().parents[2]


def build_algorithm(name: str, easy_setup, executor: str):
    federated = replace(FEDERATED, executor=executor, max_workers=2)
    kwargs = dict(
        architecture=easy_setup["arch"],
        train_dataset=easy_setup["train"],
        partition=easy_setup["partition"],
        test_dataset=easy_setup["test"],
        profiles=easy_setup["profiles"],
        resource_model=easy_setup["resource_model"],
        seed=0,
    )
    if name == "adaptivefl":
        return AdaptiveFL(
            algorithm_config=AdaptiveFLConfig(federated=federated, local=LOCAL, pool=easy_setup["pool"]),
            **kwargs,
        )
    return HeteroFL(federated_config=federated, local_config=LOCAL, **kwargs)


def history_fingerprint(algorithm) -> list[dict]:
    fingerprint = []
    for record in algorithm.history.records:
        fingerprint.append(
            {
                "round": record.round_index,
                "selected": list(record.selected_clients),
                "dispatched": list(record.dispatched),
                "returned": list(record.returned),
                "train_loss": record.train_loss,
                "full_accuracy": record.full_accuracy,
                "avg_accuracy": record.avg_accuracy,
                "level_accuracies": dict(record.level_accuracies),
                "communication_waste": record.communication_waste,
            }
        )
    return fingerprint


@pytest.fixture(scope="module")
def serial_reference(easy_setup):
    reference = {}
    for name in ALGORITHMS:
        algorithm = build_algorithm(name, easy_setup, "serial")
        algorithm.run()
        reference[name] = (history_fingerprint(algorithm), algorithm.global_state)
    return reference


def _spawn_client(host: str, port: int, name: str, *extra: str) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "client",
            "--host",
            host,
            "--port",
            str(port),
            "--name",
            name,
            "--backoff-base",
            "0.05",
            *extra,
        ],
        cwd=REPO_ROOT,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


@pytest.fixture(scope="module")
def remote_fleet():
    """One RemoteExecutor plus two subprocess clients, shared by both algorithms.

    The first client drops its connection once after its third computed
    result — mid-run for the first algorithm — exercising requeue,
    reconnect-as-resumed and duplicate suppression while the parity
    assertions stay bit-exact.
    """
    executor = RemoteExecutor(
        options=ServeOptions(
            port=0,
            min_clients=2,
            connect_timeout=60.0,
            straggler_timeout=60.0,
            heartbeat_interval=0.5,
            liveness_timeout=30.0,
        )
    )
    host, port = executor.start()
    clients = [
        _spawn_client(host, port, "worker-0", "--drop-after", "3"),
        _spawn_client(host, port, "worker-1"),
    ]
    try:
        yield executor
    finally:
        executor.shutdown()
        for process in clients:
            try:
                process.wait(timeout=15)
            except subprocess.TimeoutExpired:
                process.kill()
                process.wait(timeout=15)


@pytest.mark.parametrize("name", ALGORITHMS)
def test_remote_history_bit_identical(easy_setup, serial_reference, remote_fleet, name):
    algorithm = build_algorithm(name, easy_setup, "remote")
    algorithm.set_executor(remote_fleet)
    algorithm.run()
    expected_history, expected_state = serial_reference[name]

    assert history_fingerprint(algorithm) == expected_history

    assert set(algorithm.global_state) == set(expected_state)
    for key, value in algorithm.global_state.items():
        assert np.array_equal(value, expected_state[key]), f"weights differ in {key!r}"


def test_remote_fleet_survived_a_reconnect(remote_fleet):
    """The injected drop actually happened: the coordinator saw churn."""
    stats = remote_fleet.stats()
    assert stats["connects"] >= 2
    assert stats["reconnects"] >= 1, f"no reconnect recorded: {stats}"
    assert stats["requeues"] >= 1, f"no requeue recorded: {stats}"
    assert stats["results"] >= stats["dispatched"] - stats["requeues"]
    # weights travelled over the wire, not through the server's filesystem
    assert stats["state_requests"] > 0, f"state never fetched remotely: {stats}"