"""Shared fixtures: tiny architectures, datasets and federated settings.

Everything here is deliberately small so the full suite runs in minutes on
a CPU; the same code paths scale to the paper's configurations through the
experiment scale presets.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import AdaptiveFLConfig, FederatedConfig, LocalTrainingConfig, ModelPoolConfig
from repro.core.model_pool import ModelPool
from repro.data.datasets import SyntheticTaskConfig, synthesize_classification_task
from repro.data.partition import iid_partition
from repro.devices.profiles import build_device_profiles
from repro.devices.resources import ResourceModel
from repro.experiments.settings import ExperimentSetting, prepare_experiment
from repro.nn.models import SlimmableResNet18, SlimmableSimpleCNN, SlimmableVGG


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def tiny_cnn() -> SlimmableSimpleCNN:
    """A small slimmable CNN (3 prunable layers) used across core tests."""
    return SlimmableSimpleCNN(num_classes=5, input_shape=(1, 8, 8), width_multiplier=0.5, hidden_features=32)


@pytest.fixture(scope="session")
def tiny_vgg() -> SlimmableVGG:
    """A narrow VGG11 for tests that need a deeper layered architecture."""
    return SlimmableVGG(
        config="vgg11",
        num_classes=5,
        input_shape=(3, 32, 32),
        width_multiplier=0.125,
        classifier_widths=(16, 16),
    )


@pytest.fixture(scope="session")
def tiny_resnet() -> SlimmableResNet18:
    """A narrow ResNet18 for residual-specific tests."""
    return SlimmableResNet18(num_classes=5, input_shape=(3, 16, 16), width_multiplier=0.125)


@pytest.fixture(scope="session")
def tiny_pool_config() -> ModelPoolConfig:
    return ModelPoolConfig(models_per_level=3, start_layers=(2, 2, 1), min_start_layer=1)


@pytest.fixture(scope="session")
def tiny_pool(tiny_cnn, tiny_pool_config) -> ModelPool:
    return ModelPool(tiny_cnn, tiny_pool_config)


@pytest.fixture(scope="session")
def tiny_task():
    """A small, learnable synthetic task (train, test)."""
    config = SyntheticTaskConfig(
        num_classes=5,
        input_shape=(1, 8, 8),
        train_samples=400,
        test_samples=150,
        clusters_per_class=2,
        noise_std=0.4,
        label_noise=0.0,
        seed=7,
    )
    return synthesize_classification_task(config)


@pytest.fixture(scope="session")
def tiny_federated_setup(tiny_cnn, tiny_task):
    """Partition, profiles and resource model for a 8-client federation."""
    train, test = tiny_task
    setup_rng = np.random.default_rng(3)
    partition = iid_partition(train, 8, setup_rng)
    profiles = build_device_profiles(8, "4:3:3", setup_rng)
    resource_model = ResourceModel(profiles, tiny_cnn.parameter_count(), uncertainty=0.1, seed=3)
    return {
        "train": train,
        "test": test,
        "partition": partition,
        "profiles": profiles,
        "resource_model": resource_model,
    }


@pytest.fixture(scope="session")
def fast_configs(tiny_pool_config):
    """Federated/local configs sized for second-scale tests."""
    federated = FederatedConfig(num_rounds=2, clients_per_round=3, eval_every=2)
    local = LocalTrainingConfig(local_epochs=1, batch_size=16, max_batches_per_epoch=3)
    adaptive = AdaptiveFLConfig(federated=federated, local=local, pool=tiny_pool_config)
    return {"federated": federated, "local": local, "adaptive": adaptive, "pool": tiny_pool_config}


@pytest.fixture(scope="session")
def ci_setting() -> ExperimentSetting:
    """The CI-scale experiment setting shared by the api/engine test suites."""
    return ExperimentSetting(
        dataset="cifar10", model="simple_cnn", scale="ci", overrides={"num_rounds": 2, "eval_every": 2}
    )


@pytest.fixture(scope="session")
def ci_prepared(ci_setting):
    """The ``ci_setting`` experiment prepared once for the whole test session.

    Prepared experiments are read-only by construction (each algorithm run
    builds its own clients, pool and global state), so sharing the snapshot
    across test modules is safe and skips repeated dataset synthesis.
    """
    return prepare_experiment(ci_setting)


@pytest.fixture(scope="session")
def easy_setup():
    """An easy 4-class task + federation that a tiny CNN learns in a few rounds.

    Used by the integration and engine suites; session-scoped because the
    synthesis is the expensive part and every consumer treats it read-only.
    """
    arch = SlimmableSimpleCNN(num_classes=4, input_shape=(1, 8, 8), width_multiplier=0.5, hidden_features=32)
    config = SyntheticTaskConfig(
        num_classes=4, input_shape=(1, 8, 8), train_samples=600, test_samples=240,
        clusters_per_class=1, noise_std=0.35, label_noise=0.0, seed=21,
    )
    train, test = synthesize_classification_task(config)
    setup_rng = np.random.default_rng(5)
    partition = iid_partition(train, 8, setup_rng)
    profiles = build_device_profiles(8, "4:3:3", setup_rng)
    resource_model = ResourceModel(profiles, arch.parameter_count(), uncertainty=0.1, seed=5)
    pool_config = ModelPoolConfig(models_per_level=3, start_layers=(2, 2, 1), min_start_layer=1)
    return {
        "arch": arch, "train": train, "test": test, "partition": partition,
        "profiles": profiles, "resource_model": resource_model, "pool": pool_config,
    }
