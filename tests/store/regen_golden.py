"""Regenerate the golden report fixture after an intentional format change.

Usage::

    PYTHONPATH=src python tests/store/regen_golden.py

Review the diff of ``tests/store/golden/report.md`` before committing —
the golden test exists to catch *unintentional* format drift.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1]))

from store.test_sweep_report import GOLDEN_PATH, make_fixture_store  # noqa: E402

from repro.store.report import generate_report  # noqa: E402


def main() -> None:
    """Rebuild the fixture store in a temp dir and rewrite the golden file."""
    with tempfile.TemporaryDirectory() as tmp:
        store = make_fixture_store(Path(tmp) / "store")
        bundle = generate_report(store, title="Golden fixture report")
    golden = Path(__file__).resolve().parents[2] / GOLDEN_PATH
    golden.parent.mkdir(parents=True, exist_ok=True)
    golden.write_text(bundle.markdown, encoding="utf-8")
    print(f"wrote {golden} ({len(bundle.markdown.splitlines())} lines)")


if __name__ == "__main__":
    main()
