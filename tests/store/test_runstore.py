"""RunStore unit tests: blobs, manifests, integrity and lifecycle."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.history import RoundRecord, TrainingHistory
from repro.store.checkpoint import CHECKPOINT_SCHEMA_VERSION, Checkpoint, CheckpointSchemaError
from repro.store.objects import ObjectStore, StoreCorruptionError
from repro.store.runstore import RunStore


def make_checkpoint(round_index: int = 1, algorithm: str = "adaptivefl") -> Checkpoint:
    history = TrainingHistory(algorithm)
    for index in range(round_index + 1):
        history.append(RoundRecord(round_index=index, train_loss=float(index)))
    return Checkpoint(
        algorithm=algorithm,
        round_index=round_index,
        global_state={
            "conv.weight": np.arange(12, dtype=np.float32).reshape(3, 4),
            "conv.bias": np.ones(3, dtype=np.float32),
        },
        history=history.to_dict(),
        rng_state={"bit_generator": "PCG64", "state": {"state": 123, "inc": 5}},
        extra_arrays={"rl/curiosity_table": np.full((3, 8), 2.0)},
        extra_state={"fleet": {"last_simulated_round": round_index, "recovering": []}},
    )


KEY = {"algorithm": "adaptivefl", "setting": {"seed": 0}, "num_rounds": 4}


class TestObjectStore:
    def test_round_trip_bit_identical(self, tmp_path):
        objects = ObjectStore(tmp_path)
        array = np.random.default_rng(0).standard_normal((5, 7)).astype(np.float32)
        digest = objects.put_array(array)
        loaded = objects.get_array(digest)
        assert loaded.dtype == array.dtype
        assert np.array_equal(loaded, array)

    def test_content_addressing_dedupes(self, tmp_path):
        objects = ObjectStore(tmp_path)
        array = np.ones((4, 4), dtype=np.float64)
        first = objects.put_array(array)
        second = objects.put_array(array.copy())
        assert first == second
        blobs = [path for path in tmp_path.rglob("*") if path.is_file()]
        assert len(blobs) == 1

    def test_truncated_blob_is_detected(self, tmp_path):
        objects = ObjectStore(tmp_path)
        digest = objects.put_array(np.arange(100, dtype=np.float32))
        path = tmp_path / digest[:2] / digest
        path.write_bytes(path.read_bytes()[:-7])  # simulate a torn write
        with pytest.raises(StoreCorruptionError, match="truncated write or disk corruption"):
            objects.get_array(digest)

    def test_missing_blob_is_reported(self, tmp_path):
        objects = ObjectStore(tmp_path)
        with pytest.raises(StoreCorruptionError, match="missing"):
            objects.get_array("ab" * 32)


class TestRunStoreLifecycle:
    def test_run_id_is_deterministic_and_order_independent(self, tmp_path):
        a = RunStore.run_id_for({"x": 1, "y": 2})
        b = RunStore.run_id_for({"y": 2, "x": 1})
        assert a == b
        assert RunStore.run_id_for({"x": 1, "y": 3}) != a

    def test_begin_run_is_idempotent(self, tmp_path):
        store = RunStore(tmp_path)
        first = store.begin_run(KEY)
        second = store.begin_run(KEY)
        assert first == second
        assert first.status == "running"
        assert not store.is_completed(first.run_id)

    def test_finish_run_persists_history(self, tmp_path):
        store = RunStore(tmp_path)
        entry = store.begin_run(KEY)
        history = TrainingHistory("adaptivefl")
        history.append(RoundRecord(round_index=0, full_accuracy=0.5))
        store.finish_run(entry.run_id, history, stop_reason="early stopping")
        assert store.is_completed(entry.run_id)
        assert store.get_run(entry.run_id).stop_reason == "early stopping"
        loaded = store.load_history(entry.run_id)
        assert loaded.to_dict() == history.to_dict()

    def test_runs_lists_every_entry(self, tmp_path):
        store = RunStore(tmp_path)
        store.begin_run(KEY)
        store.begin_run({**KEY, "algorithm": "heterofl"})
        assert len(store.runs()) == 2

    def test_unknown_store_schema_is_refused(self, tmp_path):
        RunStore(tmp_path)
        (tmp_path / "store.json").write_text(json.dumps({"schema_version": 999}))
        with pytest.raises(CheckpointSchemaError, match="schema version 999"):
            RunStore(tmp_path)


class TestCheckpoints:
    def test_checkpoint_round_trip_bit_identical(self, tmp_path):
        store = RunStore(tmp_path)
        entry = store.begin_run(KEY)
        checkpoint = make_checkpoint()
        store.save_checkpoint(entry.run_id, checkpoint)
        loaded = store.load_checkpoint(entry.run_id)
        assert loaded.algorithm == checkpoint.algorithm
        assert loaded.round_index == checkpoint.round_index
        assert loaded.history == checkpoint.history
        assert loaded.rng_state == checkpoint.rng_state
        assert loaded.extra_state == checkpoint.extra_state
        for key, value in checkpoint.global_state.items():
            assert loaded.global_state[key].dtype == value.dtype
            assert np.array_equal(loaded.global_state[key], value)
        for key, value in checkpoint.extra_arrays.items():
            assert np.array_equal(loaded.extra_arrays[key], value)

    def test_latest_checkpoint_and_keep_pruning(self, tmp_path):
        store = RunStore(tmp_path)
        entry = store.begin_run(KEY)
        assert store.latest_checkpoint(entry.run_id) is None
        for round_index in range(4):
            store.save_checkpoint(entry.run_id, make_checkpoint(round_index), keep=2)
        assert store.checkpoint_rounds(entry.run_id) == [2, 3]
        assert store.load_checkpoint(entry.run_id).round_index == 3
        assert store.load_checkpoint(entry.run_id, round_index=2).round_index == 2
        with pytest.raises(ValueError, match="no checkpoint for round 0"):
            store.load_checkpoint(entry.run_id, round_index=0)

    def test_truncated_manifest_is_detected(self, tmp_path):
        store = RunStore(tmp_path)
        entry = store.begin_run(KEY)
        path = store.save_checkpoint(entry.run_id, make_checkpoint())
        text = path.read_text()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(StoreCorruptionError, match="not valid JSON"):
            store.load_checkpoint(entry.run_id)

    def test_edited_manifest_fails_checksum(self, tmp_path):
        store = RunStore(tmp_path)
        entry = store.begin_run(KEY)
        path = store.save_checkpoint(entry.run_id, make_checkpoint())
        body = json.loads(path.read_text())
        body["round_index"] = 7  # tamper without updating the checksum
        (store._manifest_path(entry.run_id, 7)).write_text(json.dumps(body))
        with pytest.raises(StoreCorruptionError, match="failed its checksum"):
            store.load_checkpoint(entry.run_id, round_index=7)

    def test_unknown_checkpoint_schema_refuses_resume(self, tmp_path):
        store = RunStore(tmp_path)
        entry = store.begin_run(KEY)
        path = store.save_checkpoint(entry.run_id, make_checkpoint())
        body = json.loads(path.read_text())
        body["schema_version"] = CHECKPOINT_SCHEMA_VERSION + 1
        path.write_text(json.dumps(body))
        with pytest.raises(CheckpointSchemaError, match="refuses to resume"):
            store.load_checkpoint(entry.run_id)

    def test_truncated_blob_surfaces_on_checkpoint_load(self, tmp_path):
        store = RunStore(tmp_path)
        entry = store.begin_run(KEY)
        path = store.save_checkpoint(entry.run_id, make_checkpoint())
        ref = next(iter(json.loads(path.read_text())["arrays"].values()))["ref"]
        blob = tmp_path / "objects" / ref[:2] / ref
        blob.write_bytes(blob.read_bytes()[:-1])
        with pytest.raises(StoreCorruptionError):
            store.load_checkpoint(entry.run_id)

    def test_save_requires_registered_run(self, tmp_path):
        store = RunStore(tmp_path)
        with pytest.raises(ValueError, match="never registered"):
            store.save_checkpoint("feedfacedeadbeef", make_checkpoint())
