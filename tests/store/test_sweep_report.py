"""Sweep orchestration + report generation against a real store."""

from __future__ import annotations

import json

import pytest

from repro.api.spec import ExperimentSpec
from repro.core.history import RoundRecord, TrainingHistory
from repro.experiments.settings import ExperimentSetting
from repro.store.report import generate_report, write_report
from repro.store.runstore import RunStore
from repro.store.sweep import SweepSpec, run_sweep


@pytest.fixture(scope="module")
def sweep_spec(ci_setting) -> SweepSpec:
    return SweepSpec(
        base=ExperimentSpec(setting=ci_setting, algorithms=("adaptivefl", "heterofl"), num_rounds=2),
        seeds=(0, 1),
    )


@pytest.fixture(scope="module")
def swept_store(sweep_spec, tmp_path_factory):
    """One sweep executed start to finish (module-scoped: runs train once)."""
    store = RunStore(tmp_path_factory.mktemp("sweep") / "store")
    result = run_sweep(sweep_spec, store)
    return store, result


class TestSweepSpec:
    def test_grid_expansion_covers_every_cell(self, sweep_spec):
        cells = sweep_spec.cells()
        assert len(cells) == 4  # 2 algorithms x 1 scenario x 2 seeds
        assert {(c.algorithm, c.seed) for c in cells} == {
            ("adaptivefl", 0), ("adaptivefl", 1), ("heterofl", 0), ("heterofl", 1),
        }
        # per-cell settings really carry the cell's seed
        assert all(cell.spec.setting.seed == cell.seed for cell in cells)

    def test_round_trip_and_strictness(self, sweep_spec):
        clone = SweepSpec.from_dict(sweep_spec.to_dict())
        assert clone.to_dict() == sweep_spec.to_dict()
        with pytest.raises(ValueError, match="does not accept"):
            SweepSpec.from_dict({**sweep_spec.to_dict(), "grid": []})

    def test_unknown_scenario_is_rejected(self, sweep_spec):
        with pytest.raises(ValueError):
            SweepSpec.from_dict({**sweep_spec.to_dict(), "scenarios": ["no_such_scenario"]})

    def test_cell_run_ids_are_distinct(self, sweep_spec):
        ids = [cell.run_id() for cell in sweep_spec.cells()]
        assert len(set(ids)) == len(ids)


class TestRunSweep:
    def test_first_invocation_runs_everything(self, swept_store):
        _, result = swept_store
        assert result.counts() == {"skipped": 0, "resumed": 0, "ran": 4}

    def test_reinvocation_skips_completed_cells(self, sweep_spec, swept_store):
        store, _ = swept_store
        again = run_sweep(sweep_spec, store)
        assert again.counts() == {"skipped": 4, "resumed": 0, "ran": 0}
        # skipped cells still surface their stored results
        assert all(cell.result.full_accuracy is not None for cell in again.cells)

    def test_skipped_results_match_original(self, sweep_spec, swept_store):
        store, first = swept_store
        again = run_sweep(sweep_spec, store)
        for before, after in zip(first.cells, again.cells):
            assert before.run_id == after.run_id
            assert after.result.history.to_dict() == before.result.history.to_dict()

    def test_sweep_spec_is_saved_into_the_store(self, sweep_spec, swept_store):
        store, _ = swept_store
        saved = SweepSpec.load(store.root / "sweep.json")
        assert saved.to_dict() == sweep_spec.to_dict()

    def test_interrupted_sweep_resumes_only_missing_cells(self, sweep_spec, tmp_path):
        """Simulate a crash after the first (scenario, seed) group and re-invoke."""
        store = RunStore(tmp_path / "store")
        seed_zero = SweepSpec.from_dict({**sweep_spec.to_dict(), "seeds": [0]})
        run_sweep(seed_zero, store)
        result = run_sweep(sweep_spec, store)
        assert result.counts() == {"skipped": 2, "resumed": 0, "ran": 2}


class TestReport:
    def test_report_covers_every_cell(self, swept_store):
        store, result = swept_store
        bundle = generate_report(store)
        assert len(bundle.payload["completed"]) == 4
        reported = {
            (row["algorithm"], row["seed"]) for row in bundle.payload["completed"]
        }
        assert reported == {(c.cell.algorithm, c.cell.seed) for c in result.cells}
        # every cell appears in the per-run markdown table
        for row in bundle.payload["completed"]:
            assert f"| {row['algorithm']} | (none) | {row['seed']} |" in bundle.markdown

    def test_report_reads_stored_state_only(self, swept_store, tmp_path):
        """A report regenerated from a *copied* store directory is identical."""
        import shutil

        store, _ = swept_store
        copy_root = tmp_path / "copied-store"
        shutil.copytree(store.root, copy_root)
        original = generate_report(store)
        copied = generate_report(copy_root)
        assert copied.markdown == original.markdown
        assert copied.payload == original.payload

    def test_incomplete_runs_are_listed_not_dropped(self, tmp_path):
        store = RunStore(tmp_path / "store")
        store.begin_run({"algorithm": "adaptivefl", "setting": {"seed": 3, "scenario": None}})
        bundle = generate_report(store)
        assert "## Incomplete runs" in bundle.markdown
        assert bundle.payload["incomplete"][0]["key"]["algorithm"] == "adaptivefl"

    def test_write_report_defaults_to_store_root(self, swept_store):
        store, _ = swept_store
        written = write_report(store)
        assert {path.name for path in written} == {"report.md", "report.json"}
        assert all(path.parent == store.root for path in written)
        payload = json.loads((store.root / "report.json").read_text())
        assert payload["algorithms"] == ["adaptivefl", "heterofl"]


GOLDEN_PATH = "tests/store/golden/report.md"


def make_fixture_store(root) -> RunStore:
    """A deterministic hand-built store (no training) for golden testing."""
    store = RunStore(root)
    grid = [
        ("adaptivefl", 0, [0.40, 0.55], [0.38, 0.50]),
        ("adaptivefl", 1, [0.42, 0.57], [0.40, 0.52]),
        ("heterofl", 0, [0.35, 0.45], [0.30, 0.40]),
        ("heterofl", 1, [0.37, 0.49], [0.32, 0.44]),
    ]
    for algorithm, seed, fulls, avgs in grid:
        key = {
            "algorithm": algorithm,
            "selection_strategy": "rl-cs" if algorithm == "adaptivefl" else None,
            "setting": {"seed": seed, "scenario": "flaky_edge", "dataset": "cifar10"},
            "num_rounds": 2,
            "scenario_override": None,
        }
        entry = store.begin_run(key)
        history = TrainingHistory(algorithm)
        for round_index, (full, avg) in enumerate(zip(fulls, avgs)):
            history.append(
                RoundRecord(
                    round_index=round_index,
                    full_accuracy=full,
                    avg_accuracy=avg,
                    level_accuracies={"L": full, "S": avg},
                    communication_waste=0.25,
                    wall_clock_seconds=10.0,
                )
            )
        store.finish_run(entry.run_id, history)
    return store


def test_report_matches_golden_fixture(tmp_path):
    """The exact report.md for a fixed store; regenerate with
    ``python tests/store/regen_golden.py`` after intentional format changes."""
    from pathlib import Path

    store = make_fixture_store(tmp_path / "store")
    bundle = generate_report(store, title="Golden fixture report")
    golden = Path(GOLDEN_PATH).read_text(encoding="utf-8")
    assert bundle.markdown == golden
