"""Store wiring through ExperimentSession and the CLI."""

from __future__ import annotations

import json

import pytest

from repro.api.cli import main
from repro.api.session import ExperimentSession
from repro.store.runstore import RunStore

CLI_SETTING = ["--scale", "ci", "--rounds", "2", "--quiet"]


@pytest.fixture()
def ci_overridden(ci_setting):
    return ci_setting


class TestSessionStore:
    def test_run_persists_and_resume_returns_stored_result(self, ci_overridden, tmp_path):
        store = RunStore(tmp_path / "store")
        first = ExperimentSession(ci_overridden).with_store(store).run("heterofl")
        [entry] = store.runs()
        assert entry.completed
        assert store.checkpoint_rounds(entry.run_id)

        again = ExperimentSession(ci_overridden).with_store(store, resume=True).run("heterofl")
        assert again.history.to_dict() == first.history.to_dict()

    def test_resume_without_store_is_rejected(self, ci_overridden):
        session = ExperimentSession(ci_overridden)
        with pytest.raises(ValueError, match="resume requires a store"):
            session.run("heterofl", resume=True)

    def test_checkpoint_every_thins_the_cadence(self, ci_overridden, tmp_path):
        store = RunStore(tmp_path / "store")
        ExperimentSession(ci_overridden).with_store(store, checkpoint_every=2).run("heterofl")
        [entry] = store.runs()
        # ci_setting overrides num_rounds to 2: rounds 0 (skipped) and 1 (cadence + final)
        assert store.checkpoint_rounds(entry.run_id) == [1]


class TestEarlyStopResume:
    def test_crash_after_early_stop_does_not_train_past_the_stop(self, ci_overridden, tmp_path):
        """The stop decision travels with the checkpoint: a resume after a
        crash-that-lost-the-completion-marker must not run extra rounds."""
        import json

        from repro.api.callbacks import Callback

        class StopImmediately(Callback):
            def on_round_end(self, algorithm, record):
                algorithm.request_stop("test stop")

        store = RunStore(tmp_path / "store")
        session = ExperimentSession(ci_overridden).with_store(store)
        first = session.run("heterofl", callbacks=[StopImmediately()], num_rounds=5)
        assert len(first.history) == 1  # stopped after round 0 of 5

        # simulate the crash: completion marker lost, checkpoints intact
        [entry] = store.runs()
        run_dir = store.root / "runs" / entry.run_id
        payload = json.loads((run_dir / "run.json").read_text())
        payload["status"] = "running"
        (run_dir / "run.json").write_text(json.dumps(payload))
        (run_dir / "history.json").unlink()

        resumed = (
            ExperimentSession(ci_overridden)
            .with_store(store, resume=True)
            .run("heterofl", num_rounds=5)
        )
        assert len(resumed.history) == 1  # did NOT train rounds 1..4
        assert resumed.history.to_dict() == first.history.to_dict()
        assert store.get_run(entry.run_id).stop_reason == "test stop"


class TestReadOnlyOpen:
    def test_report_on_non_store_path_raises(self, tmp_path):
        from repro.store.report import generate_report

        bogus = tmp_path / "typo-dir"
        with pytest.raises(ValueError, match="no experiment store at"):
            generate_report(bogus)
        assert not bogus.exists()  # nothing was fabricated

    def test_report_cli_on_non_store_path_exits_cleanly(self, tmp_path, capsys):
        assert main(["report", "--store", str(tmp_path / "typo-dir")]) == 2
        assert "no experiment store" in capsys.readouterr().err


class TestCliStore:
    def test_run_store_resume_skips_training(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        out_dir = tmp_path / "results"
        argv = [
            "run", "--algorithm", "heterofl", *CLI_SETTING,
            "--store", str(store_dir), "--output-dir", str(out_dir),
        ]
        assert main(argv) == 0
        store = RunStore(store_dir)
        [entry] = store.runs()
        assert entry.completed
        first_history = store.load_history(entry.run_id).to_dict()

        assert main([*argv, "--resume"]) == 0
        assert store.load_history(entry.run_id).to_dict() == first_history

    def test_resume_without_store_errors_cleanly(self, tmp_path, capsys):
        assert main(["run", "--algorithm", "heterofl", *CLI_SETTING, "--resume"]) == 2
        assert "--resume requires --store" in capsys.readouterr().err

    def test_sweep_then_report(self, tmp_path, capsys):
        store_dir = tmp_path / "store"
        argv = [
            "sweep", "--algorithms", "heterofl", "--seeds", "0", "1",
            *CLI_SETTING, "--store", str(store_dir),
        ]
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert "1 ran" not in out  # two seeds -> two cells ran
        assert "2 ran, 0 resumed, 0 skipped" in out

        assert main(argv) == 0
        assert "0 ran, 0 resumed, 2 skipped" in capsys.readouterr().out

        assert main(["report", "--store", str(store_dir), "--title", "CI sweep"]) == 0
        out = capsys.readouterr().out
        assert "# CI sweep" in out
        payload = json.loads((store_dir / "report.json").read_text())
        assert {(row["algorithm"], row["seed"]) for row in payload["completed"]} == {
            ("heterofl", 0), ("heterofl", 1),
        }
        assert (store_dir / "report.md").exists()

    def test_sweep_requires_store(self, capsys):
        assert main(["sweep", "--algorithms", "heterofl", *CLI_SETTING]) == 2
        assert "requires --store" in capsys.readouterr().err

    def test_sweep_spec_conflicts_with_grid_flags(self, tmp_path, capsys):
        spec_path = tmp_path / "sweep.json"
        spec_path.write_text(json.dumps({"base": {}, "seeds": [0], "scenarios": []}))
        code = main([
            "sweep", "--spec", str(spec_path), "--seeds", "1",
            "--store", str(tmp_path / "store"), "--quiet",
        ])
        assert code == 2
        assert "cannot be combined with --spec" in capsys.readouterr().err
