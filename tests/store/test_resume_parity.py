"""Resume-parity regression suite (the experiment store's core guarantee).

A run checkpointed at round *k* and resumed must produce a
**bit-identical** :class:`TrainingHistory` and final global weights to an
uninterrupted same-seed run — for AdaptiveFL (whose RL tables must travel
with the weights) and HeteroFL, across the serial and process executors,
and under a dynamic fleet scenario (whose battery/availability state must
travel too).  Exact float equality is intentional, mirroring
``tests/engine/test_parity.py``: resuming must not change a single bit.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.baselines import HeteroFL
from repro.core.config import AdaptiveFLConfig, FederatedConfig, LocalTrainingConfig
from repro.core.server import AdaptiveFL
from repro.store.runstore import RunRecorder, RunStore

ALGORITHMS = ["adaptivefl", "heterofl"]
EXECUTORS = ["serial", "process"]

ROUNDS = 3
RESUME_AT = 1  # resume from the checkpoint written after this round
FEDERATED = FederatedConfig(num_rounds=ROUNDS, clients_per_round=4, eval_every=2)
LOCAL = LocalTrainingConfig(local_epochs=1, batch_size=25, max_batches_per_epoch=3)

KEY = {"suite": "resume-parity"}


def build_algorithm(name: str, easy_setup, executor: str, scenario: str | None = None):
    federated = replace(FEDERATED, executor=executor, max_workers=2)
    kwargs = dict(
        architecture=easy_setup["arch"],
        train_dataset=easy_setup["train"],
        partition=easy_setup["partition"],
        test_dataset=easy_setup["test"],
        profiles=easy_setup["profiles"],
        resource_model=easy_setup["resource_model"],
        scenario=scenario,
        seed=0,
    )
    if name == "adaptivefl":
        return AdaptiveFL(
            algorithm_config=AdaptiveFLConfig(federated=federated, local=LOCAL, pool=easy_setup["pool"]),
            **kwargs,
        )
    return HeteroFL(federated_config=federated, local_config=LOCAL, **kwargs)


def fingerprint(history) -> list[dict]:
    return [record.to_dict() for record in history.records]


def assert_same_weights(actual, expected):
    assert set(actual) == set(expected)
    for key, value in actual.items():
        assert value.dtype == expected[key].dtype
        assert np.array_equal(value, expected[key]), f"weights differ in {key!r}"


@pytest.fixture(scope="module")
def reference(easy_setup, tmp_path_factory):
    """Uninterrupted serial runs, checkpointed every round into a store."""
    runs = {}
    for scenario in (None, "flaky_edge"):
        for name in ALGORITHMS:
            store = RunStore(
                tmp_path_factory.mktemp(f"ref-{name}-{scenario or 'plain'}") / "store"
            )
            entry = store.begin_run({**KEY, "algorithm": name, "scenario": scenario})
            algorithm = build_algorithm(name, easy_setup, "serial", scenario=scenario)
            algorithm.run(callbacks=[RunRecorder(store, entry.run_id)])
            assert store.checkpoint_rounds(entry.run_id) == list(range(ROUNDS))
            runs[(name, scenario)] = (
                store,
                entry.run_id,
                fingerprint(algorithm.history),
                algorithm.global_state,
            )
    return runs


@pytest.mark.parametrize("name", ALGORITHMS)
@pytest.mark.parametrize("executor", EXECUTORS)
def test_resume_bit_identical(easy_setup, reference, name, executor):
    store, run_id, expected_history, expected_state = reference[(name, None)]
    checkpoint = store.load_checkpoint(run_id, round_index=RESUME_AT)

    resumed = build_algorithm(name, easy_setup, executor)
    resumed.restore_checkpoint(checkpoint)
    assert len(resumed.history) == RESUME_AT + 1
    resumed.run(num_rounds=ROUNDS - (RESUME_AT + 1))

    assert fingerprint(resumed.history) == expected_history
    assert_same_weights(resumed.global_state, expected_state)


@pytest.mark.parametrize("name", ALGORITHMS)
def test_resume_under_scenario_restores_fleet_state(easy_setup, reference, name):
    """Battery/availability dynamics continue exactly where they left off."""
    store, run_id, expected_history, expected_state = reference[(name, "flaky_edge")]
    checkpoint = store.load_checkpoint(run_id, round_index=RESUME_AT)

    resumed = build_algorithm(name, easy_setup, "serial", scenario="flaky_edge")
    resumed.restore_checkpoint(checkpoint)
    resumed.run(num_rounds=ROUNDS - (RESUME_AT + 1))

    assert fingerprint(resumed.history) == expected_history
    assert_same_weights(resumed.global_state, expected_state)


@pytest.mark.parametrize("round_index", range(ROUNDS - 1))
def test_every_checkpoint_round_resumes_identically(easy_setup, reference, round_index):
    """Not just the midpoint: every prefix of the run is a valid resume point."""
    store, run_id, expected_history, expected_state = reference[("adaptivefl", None)]
    checkpoint = store.load_checkpoint(run_id, round_index=round_index)
    resumed = build_algorithm("adaptivefl", easy_setup, "serial")
    resumed.restore_checkpoint(checkpoint)
    resumed.run(num_rounds=ROUNDS - (round_index + 1))
    assert fingerprint(resumed.history) == expected_history
    assert_same_weights(resumed.global_state, expected_state)


def test_rl_tables_travel_with_the_checkpoint(easy_setup, reference):
    """A resume that dropped the RL tables would silently diverge; prove they load."""
    store, run_id, _, _ = reference[("adaptivefl", None)]
    checkpoint = store.load_checkpoint(run_id, round_index=RESUME_AT)
    assert "rl/curiosity_table" in checkpoint.extra_arrays
    assert "rl/resource_table" in checkpoint.extra_arrays

    resumed = build_algorithm("adaptivefl", easy_setup, "serial")
    before = resumed.selector.snapshot()
    resumed.restore_checkpoint(checkpoint)
    after = resumed.selector.snapshot()
    assert not np.array_equal(before["curiosity"], after["curiosity"])
    assert np.array_equal(after["curiosity"], checkpoint.extra_arrays["rl/curiosity_table"])


class TestRestoreValidation:
    def test_restore_refuses_wrong_algorithm(self, easy_setup, reference):
        store, run_id, _, _ = reference[("adaptivefl", None)]
        checkpoint = store.load_checkpoint(run_id)
        target = build_algorithm("heterofl", easy_setup, "serial")
        with pytest.raises(ValueError, match="belongs to algorithm 'adaptivefl'"):
            target.restore_checkpoint(checkpoint)

    def test_restore_refuses_used_algorithm(self, easy_setup, reference):
        store, run_id, _, _ = reference[("adaptivefl", None)]
        checkpoint = store.load_checkpoint(run_id)
        target = build_algorithm("adaptivefl", easy_setup, "serial")
        target.run(num_rounds=1)
        with pytest.raises(RuntimeError, match="freshly built"):
            target.restore_checkpoint(checkpoint)

    def test_restore_refuses_scenario_mismatch(self, easy_setup, reference):
        store, run_id, _, _ = reference[("adaptivefl", "flaky_edge")]
        checkpoint = store.load_checkpoint(run_id)
        target = build_algorithm("adaptivefl", easy_setup, "serial")
        with pytest.raises(ValueError, match="no scenario attached"):
            target.restore_checkpoint(checkpoint)
