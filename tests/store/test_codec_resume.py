"""Checkpoint/resume under lossy transport codecs.

Error-feedback residuals are training state: a top-k run that resumes
without them replays compression error it had already corrected and
silently diverges from the uninterrupted run.  This suite pins the
contract added with the codec tier:

* codec metadata and per-client residual banks travel inside
  :class:`Checkpoint` extras (``extra_state["codec"]`` +
  ``extra_arrays["codec/{client}/{key}"]``),
* a lossy run resumed from any checkpoint round is **bit-identical** to
  the uninterrupted same-seed run (same standard as the exact-transport
  resume-parity suite),
* restore refuses codec mismatches loudly: a codec run cannot resume an
  exact checkpoint, an exact run cannot resume a codec checkpoint, and
  two different codecs cannot resume each other.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest

from repro.core.config import AdaptiveFLConfig, FederatedConfig, LocalTrainingConfig
from repro.core.server import AdaptiveFL
from repro.store.runstore import RunRecorder, RunStore

ROUNDS = 3
FEDERATED = FederatedConfig(num_rounds=ROUNDS, clients_per_round=4, eval_every=2)
LOCAL = LocalTrainingConfig(local_epochs=1, batch_size=25, max_batches_per_epoch=3)


def build_algorithm(easy_setup, codec: str) -> AdaptiveFL:
    federated = replace(FEDERATED, transport_codec=codec)
    return AdaptiveFL(
        algorithm_config=AdaptiveFLConfig(federated=federated, local=LOCAL, pool=easy_setup["pool"]),
        architecture=easy_setup["arch"],
        train_dataset=easy_setup["train"],
        partition=easy_setup["partition"],
        test_dataset=easy_setup["test"],
        profiles=easy_setup["profiles"],
        resource_model=easy_setup["resource_model"],
        seed=0,
    )


def fingerprint(history) -> list[dict]:
    return [record.to_dict() for record in history.records]


def assert_same_weights(actual, expected):
    assert set(actual) == set(expected)
    for key, value in actual.items():
        assert np.array_equal(value, expected[key]), f"weights differ in {key!r}"


@pytest.fixture(scope="module")
def codec_reference(easy_setup, tmp_path_factory):
    """Uninterrupted serial runs per codec, checkpointed every round."""
    runs = {}
    for codec in ("none", "topk", "int8"):
        store = RunStore(tmp_path_factory.mktemp(f"codec-{codec}") / "store")
        entry = store.begin_run({"suite": "codec-resume", "codec": codec})
        algorithm = build_algorithm(easy_setup, codec)
        algorithm.run(callbacks=[RunRecorder(store, entry.run_id)])
        assert store.checkpoint_rounds(entry.run_id) == list(range(ROUNDS))
        runs[codec] = (
            store,
            entry.run_id,
            fingerprint(algorithm.history),
            algorithm.global_state,
        )
    return runs


class TestResidualsTravel:
    def test_topk_checkpoint_carries_codec_state_and_residual_arrays(self, codec_reference):
        store, run_id, _, _ = codec_reference["topk"]
        checkpoint = store.load_checkpoint(run_id, round_index=ROUNDS - 1)
        meta = checkpoint.extra_state["codec"]
        assert meta["name"] == "topk"
        # error feedback banked residuals for every client that uploaded
        assert meta["clients"], "topk run finished with no banked residuals"
        for client_id in meta["clients"]:
            keys = [
                key for key in checkpoint.extra_arrays if key.startswith(f"codec/{client_id}/")
            ]
            assert keys, f"client {client_id} listed but has no residual arrays"
            assert all(checkpoint.extra_arrays[key].dtype == np.float32 for key in keys)
            # small tensors may be fully kept (zero residual); across the
            # whole bank the dropped coordinates must show up somewhere
            assert any(
                np.any(checkpoint.extra_arrays[key] != 0.0) for key in keys
            ), f"client {client_id} residual bank is all zeros"

    def test_int8_checkpoint_carries_codec_name_but_no_residuals(self, codec_reference):
        """int8 keeps no error feedback; its codec state is just the name."""
        store, run_id, _, _ = codec_reference["int8"]
        checkpoint = store.load_checkpoint(run_id, round_index=ROUNDS - 1)
        assert checkpoint.extra_state["codec"]["name"] == "int8"
        assert checkpoint.extra_state["codec"]["clients"] == []
        assert not [key for key in checkpoint.extra_arrays if key.startswith("codec/")]

    def test_exact_checkpoint_carries_no_codec_state(self, codec_reference):
        store, run_id, _, _ = codec_reference["none"]
        checkpoint = store.load_checkpoint(run_id, round_index=ROUNDS - 1)
        assert "codec" not in checkpoint.extra_state
        assert not [key for key in checkpoint.extra_arrays if key.startswith("codec/")]


@pytest.mark.parametrize("codec", ["topk", "int8"])
@pytest.mark.parametrize("round_index", range(ROUNDS - 1))
def test_lossy_resume_bit_identical(easy_setup, codec_reference, codec, round_index):
    """Every checkpoint round of a lossy run is a bit-exact resume point."""
    store, run_id, expected_history, expected_state = codec_reference[codec]
    checkpoint = store.load_checkpoint(run_id, round_index=round_index)

    resumed = build_algorithm(easy_setup, codec)
    resumed.restore_checkpoint(checkpoint)
    assert len(resumed.history) == round_index + 1
    resumed.run(num_rounds=ROUNDS - (round_index + 1))

    assert fingerprint(resumed.history) == expected_history
    assert_same_weights(resumed.global_state, expected_state)


def test_restored_residuals_match_the_checkpointed_bank(easy_setup, codec_reference):
    """The residual arrays land back in the per-client bank bit-for-bit."""
    store, run_id, _, _ = codec_reference["topk"]
    checkpoint = store.load_checkpoint(run_id, round_index=1)
    resumed = build_algorithm(easy_setup, "topk")
    resumed.restore_checkpoint(checkpoint)
    meta = checkpoint.extra_state["codec"]
    for client_id in meta["clients"]:
        bank = resumed._codec_residuals[client_id]
        for key, value in bank.items():
            assert np.array_equal(value, checkpoint.extra_arrays[f"codec/{client_id}/{key}"])


class TestRestoreValidation:
    def test_codec_run_refuses_exact_checkpoint(self, easy_setup, codec_reference):
        store, run_id, _, _ = codec_reference["none"]
        checkpoint = store.load_checkpoint(run_id)
        target = build_algorithm(easy_setup, "topk")
        with pytest.raises(ValueError, match="no codec state"):
            target.restore_checkpoint(checkpoint)

    def test_exact_run_refuses_codec_checkpoint(self, easy_setup, codec_reference):
        store, run_id, _, _ = codec_reference["topk"]
        checkpoint = store.load_checkpoint(run_id)
        target = build_algorithm(easy_setup, "none")
        with pytest.raises(ValueError, match="carries transport-codec state"):
            target.restore_checkpoint(checkpoint)

    def test_codec_name_mismatch_refused(self, easy_setup, codec_reference):
        store, run_id, _, _ = codec_reference["topk"]
        checkpoint = store.load_checkpoint(run_id)
        target = build_algorithm(easy_setup, "int8")
        with pytest.raises(ValueError, match="written with transport codec 'topk'"):
            target.restore_checkpoint(checkpoint)
