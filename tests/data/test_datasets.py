"""Synthetic dataset generator tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.datasets import (
    Dataset,
    SyntheticTaskConfig,
    make_cifar10_like,
    make_cifar100_like,
    make_femnist_like,
    make_widar_like,
    synthesize_classification_task,
)


class TestDataset:
    def test_validation(self):
        with pytest.raises(ValueError):
            Dataset(np.zeros((4, 3, 8)), np.zeros(4), 10)  # not NCHW
        with pytest.raises(ValueError):
            Dataset(np.zeros((4, 3, 8, 8)), np.zeros(3), 10)  # label length mismatch
        with pytest.raises(ValueError):
            Dataset(np.zeros((2, 1, 4, 4)), np.array([0, 12]), 10)  # label out of range

    def test_subset_and_counts(self):
        images = np.zeros((6, 1, 4, 4))
        labels = np.array([0, 1, 1, 2, 2, 2])
        ds = Dataset(images, labels, 3)
        sub = ds.subset(np.array([3, 4, 5]))
        assert len(sub) == 3
        assert np.all(sub.labels == 2)
        assert list(ds.class_counts()) == [1, 2, 3]

    def test_groups_propagate_through_subset(self):
        ds = Dataset(np.zeros((4, 1, 2, 2)), np.array([0, 1, 0, 1]), 2, groups=np.array([0, 0, 1, 1]))
        sub = ds.subset(np.array([2, 3]))
        assert np.all(sub.groups == 1)


class TestSynthesis:
    def test_shapes_and_ranges(self):
        config = SyntheticTaskConfig(num_classes=6, input_shape=(3, 12, 12), train_samples=120, test_samples=40, seed=0)
        train, test = synthesize_classification_task(config)
        assert train.images.shape == (120, 3, 12, 12)
        assert test.images.shape == (40, 3, 12, 12)
        assert train.labels.max() < 6 and train.labels.min() >= 0
        assert train.num_classes == 6

    def test_deterministic_given_seed(self):
        config = SyntheticTaskConfig(num_classes=4, input_shape=(1, 8, 8), train_samples=50, test_samples=20, seed=11)
        a_train, _ = synthesize_classification_task(config)
        b_train, _ = synthesize_classification_task(config)
        assert np.allclose(a_train.images, b_train.images)
        assert np.array_equal(a_train.labels, b_train.labels)

    def test_different_seeds_differ(self):
        base = dict(num_classes=4, input_shape=(1, 8, 8), train_samples=50, test_samples=20)
        a_train, _ = synthesize_classification_task(SyntheticTaskConfig(seed=1, **base))
        b_train, _ = synthesize_classification_task(SyntheticTaskConfig(seed=2, **base))
        assert not np.allclose(a_train.images, b_train.images)

    def test_task_is_learnable_by_nearest_prototype(self):
        """A trivial nearest-class-mean classifier must beat chance by a wide
        margin — otherwise the FL experiments could never separate methods."""
        config = SyntheticTaskConfig(
            num_classes=5, input_shape=(1, 8, 8), train_samples=500, test_samples=200,
            clusters_per_class=1, noise_std=0.5, label_noise=0.0, seed=3,
        )
        train, test = synthesize_classification_task(config)
        means = np.stack([train.images[train.labels == c].mean(axis=0).ravel() for c in range(5)])
        flat = test.images.reshape(len(test), -1)
        predictions = np.argmin(((flat[:, None, :] - means[None]) ** 2).sum(axis=2), axis=1)
        accuracy = (predictions == test.labels).mean()
        assert accuracy > 0.6

    @settings(max_examples=10, deadline=None)
    @given(label_noise=st.floats(0.0, 0.4))
    def test_label_noise_bounds(self, label_noise):
        config = SyntheticTaskConfig(
            num_classes=3, input_shape=(1, 6, 6), train_samples=60, test_samples=20,
            label_noise=label_noise, seed=0,
        )
        train, _ = synthesize_classification_task(config)
        assert train.labels.min() >= 0 and train.labels.max() < 3

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            SyntheticTaskConfig(num_classes=1, input_shape=(1, 8, 8), train_samples=10, test_samples=10)
        with pytest.raises(ValueError):
            SyntheticTaskConfig(num_classes=3, input_shape=(1, 8, 8), train_samples=0, test_samples=10)
        with pytest.raises(ValueError):
            SyntheticTaskConfig(num_classes=3, input_shape=(1, 8, 8), train_samples=10, test_samples=10, label_noise=0.7)


class TestFactories:
    def test_cifar10_like(self):
        train, test = make_cifar10_like(train_samples=100, test_samples=40, image_size=16, seed=0)
        assert train.input_shape == (3, 16, 16)
        assert train.num_classes == 10

    def test_cifar100_like(self):
        train, _ = make_cifar100_like(train_samples=200, test_samples=40, image_size=16, seed=0)
        assert train.num_classes == 100

    def test_femnist_like_has_writer_groups(self):
        train, _ = make_femnist_like(num_writers=12, train_samples=200, test_samples=40, image_size=16, seed=0)
        assert train.num_classes == 62
        assert train.groups is not None
        assert len(np.unique(train.groups)) <= 12

    def test_widar_like(self):
        train, _ = make_widar_like(num_users=5, train_samples=100, test_samples=30, image_size=16, seed=0)
        assert train.num_classes == 22
        assert train.input_shape == (1, 16, 16)
        assert train.groups is not None

    def test_overrides_forwarded(self):
        train, _ = make_cifar10_like(train_samples=50, test_samples=20, image_size=8, seed=0, num_classes=4)
        assert train.num_classes == 4
