"""Partitioner, loader and transform tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data.datasets import make_cifar10_like, make_femnist_like
from repro.data.loader import DataLoader
from repro.data.partition import (
    ClientPartition,
    dirichlet_partition,
    iid_partition,
    natural_partition,
    partition_dataset,
)
from repro.data.transforms import add_gaussian_noise, normalize, random_crop_shift


@pytest.fixture(scope="module")
def small_dataset():
    train, _ = make_cifar10_like(train_samples=600, test_samples=50, image_size=8, seed=0)
    return train


class TestIIDPartition:
    def test_covers_dataset_disjointly(self, small_dataset):
        partition = iid_partition(small_dataset, 10, np.random.default_rng(0))
        partition.validate(small_dataset)
        assert sum(partition.sizes()) == len(small_dataset)
        assert partition.num_clients == 10

    def test_sizes_balanced(self, small_dataset):
        partition = iid_partition(small_dataset, 7, np.random.default_rng(0))
        sizes = partition.sizes()
        assert max(sizes) - min(sizes) <= 1

    def test_label_distribution_roughly_uniform(self, small_dataset):
        partition = iid_partition(small_dataset, 5, np.random.default_rng(0))
        table = partition.label_distribution(small_dataset)
        # every client should see most classes under IID
        assert (table > 0).mean() > 0.9


class TestDirichletPartition:
    @settings(max_examples=8, deadline=None)
    @given(alpha=st.sampled_from([0.1, 0.3, 0.6, 1.0]))
    def test_covers_dataset(self, small_dataset, alpha):
        partition = dirichlet_partition(small_dataset, 8, alpha, np.random.default_rng(0))
        partition.validate(small_dataset)
        assert sum(partition.sizes()) == len(small_dataset)
        assert min(partition.sizes()) >= 2

    def test_smaller_alpha_is_more_skewed(self, small_dataset):
        rng = np.random.default_rng(0)
        skewed = dirichlet_partition(small_dataset, 8, 0.1, rng)
        uniform = dirichlet_partition(small_dataset, 8, 100.0, np.random.default_rng(0))

        def mean_entropy(partition):
            table = partition.label_distribution(small_dataset).astype(float)
            table = table / np.clip(table.sum(axis=1, keepdims=True), 1, None)
            with np.errstate(divide="ignore", invalid="ignore"):
                entropy = -(table * np.log(np.clip(table, 1e-12, None))).sum(axis=1)
            return entropy.mean()

        assert mean_entropy(skewed) < mean_entropy(uniform)

    def test_invalid_alpha(self, small_dataset):
        with pytest.raises(ValueError):
            dirichlet_partition(small_dataset, 4, 0.0, np.random.default_rng(0))


class TestNaturalPartition:
    def test_groups_stay_together(self):
        train, _ = make_femnist_like(num_writers=12, train_samples=300, test_samples=50, image_size=8, seed=0)
        partition = natural_partition(train, 6, np.random.default_rng(0))
        partition.validate(train)
        for indices in partition.client_indices:
            groups_here = set(train.groups[indices])
            for other in partition.client_indices:
                if other is indices:
                    continue
                assert groups_here.isdisjoint(set(train.groups[other]))

    def test_requires_group_ids(self, small_dataset):
        with pytest.raises(ValueError):
            natural_partition(small_dataset, 4, np.random.default_rng(0))

    def test_too_many_clients_raises(self):
        train, _ = make_femnist_like(num_writers=4, train_samples=100, test_samples=20, image_size=8, seed=0)
        with pytest.raises(ValueError):
            natural_partition(train, 10, np.random.default_rng(0))


class TestPartitionDispatch:
    def test_dispatch(self, small_dataset):
        rng = np.random.default_rng(0)
        assert partition_dataset(small_dataset, 4, "iid", rng).num_clients == 4
        assert partition_dataset(small_dataset, 4, "dirichlet", rng, alpha=0.5).num_clients == 4
        with pytest.raises(ValueError):
            partition_dataset(small_dataset, 4, "dirichlet", rng)
        with pytest.raises(ValueError):
            partition_dataset(small_dataset, 4, "unknown", rng)

    def test_partition_validation_catches_overlap(self, small_dataset):
        partition = ClientPartition([np.array([0, 1]), np.array([1, 2])])
        with pytest.raises(ValueError):
            partition.validate(small_dataset)


class TestDataLoader:
    def test_batch_count_and_shapes(self, small_dataset):
        loader = DataLoader(small_dataset, batch_size=64, shuffle=False)
        batches = list(loader)
        assert len(batches) == len(loader)
        assert sum(len(y) for _, y in batches) == len(small_dataset)
        assert batches[0][0].shape[1:] == small_dataset.input_shape

    def test_drop_last(self, small_dataset):
        loader = DataLoader(small_dataset, batch_size=64, shuffle=False, drop_last=True)
        assert all(len(y) == 64 for _, y in loader)

    def test_shuffle_changes_order_but_not_content(self, small_dataset):
        loader = DataLoader(small_dataset, batch_size=len(small_dataset), shuffle=True, rng=np.random.default_rng(0))
        (images, labels), = list(loader)
        assert sorted(labels.tolist()) == sorted(small_dataset.labels.tolist())
        assert not np.array_equal(labels, small_dataset.labels)

    def test_invalid_batch_size(self, small_dataset):
        with pytest.raises(ValueError):
            DataLoader(small_dataset, batch_size=0)


class TestTransforms:
    def test_normalize(self):
        images = np.random.default_rng(0).normal(loc=5, scale=3, size=(10, 1, 4, 4))
        out = normalize(images)
        # tolerances scale with the stack dtype (float32 by default)
        eps = float(np.finfo(out.dtype).eps)
        assert abs(out.mean()) < 100 * eps
        assert abs(out.std() - 1.0) < 100 * eps

    def test_add_gaussian_noise_zero_std_is_copy(self):
        images = np.ones((2, 1, 3, 3))
        out = add_gaussian_noise(images, 0.0, np.random.default_rng(0))
        assert np.allclose(out, images)
        assert out is not images

    def test_random_crop_shift_preserves_shape(self):
        images = np.random.default_rng(0).normal(size=(4, 3, 8, 8))
        out = random_crop_shift(images, 2, np.random.default_rng(1))
        assert out.shape == images.shape

    def test_transform_validation(self):
        with pytest.raises(ValueError):
            normalize(np.ones((2, 1, 2, 2)), std=0.0)
        with pytest.raises(ValueError):
            add_gaussian_noise(np.ones((1, 1, 2, 2)), -1.0, np.random.default_rng(0))
        with pytest.raises(ValueError):
            random_crop_shift(np.ones((1, 1, 2, 2)), -1, np.random.default_rng(0))
