"""Metric primitives, registry semantics and Prometheus text exposition."""

from __future__ import annotations

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    registry,
    render_prometheus,
)


class TestCounter:
    def test_accumulates(self):
        counter = Counter("requests_total")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_decrease(self):
        counter = Counter("requests_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_name_validation(self):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("bad name")
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("9starts_with_digit")
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter("")


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("tasks_inflight")
        gauge.set(5)
        gauge.inc(2)
        gauge.dec(4)
        assert gauge.value == 3.0


class TestHistogram:
    def test_sum_count_and_properties(self):
        histogram = Histogram("latency_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        assert histogram.calls == 4
        assert histogram.total == pytest.approx(55.55)

    def test_exposition_buckets_are_cumulative(self):
        histogram = Histogram("latency_seconds", buckets=(0.1, 1.0, 10.0))
        for value in (0.05, 0.5, 5.0, 50.0):
            histogram.observe(value)
        samples = dict(histogram.expose())
        assert samples['latency_seconds_bucket{le="0.1"}'] == 1
        assert samples['latency_seconds_bucket{le="1"}'] == 2
        assert samples['latency_seconds_bucket{le="10"}'] == 3
        # +Inf always equals the observation count (50.0 is over every bound)
        assert samples['latency_seconds_bucket{le="+Inf"}'] == 4
        assert samples["latency_seconds_count"] == 4

    def test_buckets_are_sorted_at_construction(self):
        histogram = Histogram("h", buckets=(5.0, 0.5))
        assert histogram.bounds == (0.5, 5.0)

    def test_rejects_empty_buckets(self):
        with pytest.raises(ValueError, match="at least one bucket"):
            Histogram("h", buckets=())


class TestRegistry:
    def test_get_or_create_is_idempotent(self):
        reg = MetricsRegistry()
        assert reg.counter("a_total") is reg.counter("a_total")

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("a_total")
        with pytest.raises(ValueError, match="already registered as a counter"):
            reg.gauge("a_total")

    def test_get_and_metrics_and_reset(self):
        reg = MetricsRegistry()
        counter = reg.counter("b_total")
        reg.gauge("a_gauge")
        assert reg.get("b_total") is counter
        assert reg.get("missing") is None
        assert [metric.name for metric in reg.metrics()] == ["a_gauge", "b_total"]
        reg.reset()
        assert reg.metrics() == []

    def test_process_wide_registry_is_a_singleton(self):
        assert registry() is registry()


class TestExposition:
    def test_render_format(self):
        reg = MetricsRegistry()
        reg.counter("rounds_total", help="completed rounds").inc(3)
        text = reg.render()
        assert "# HELP rounds_total completed rounds" in text
        assert "# TYPE rounds_total counter" in text
        assert "rounds_total 3" in text
        assert text.endswith("\n")

    def test_integers_render_without_decimal_point(self):
        reg = MetricsRegistry()
        reg.gauge("g").set(2.0)
        assert "g 2\n" in reg.render()
        reg.gauge("g").set(2.5)
        assert "g 2.5" in reg.render()

    def test_merge_later_registry_wins(self):
        base, overlay = MetricsRegistry(), MetricsRegistry()
        base.counter("shared_total").inc(1)
        overlay.counter("shared_total").inc(9)
        base.counter("only_base_total").inc(4)
        text = render_prometheus(base, overlay)
        assert "shared_total 9" in text
        assert "shared_total 1" not in text
        assert "only_base_total 4" in text
