"""Telemetry against a real run: emitted lifecycle events + bit-parity.

Telemetry is an observer.  These tests pin both halves of that claim:
an instrumented run emits the documented lifecycle events with coherent
trace identity, and its :class:`TrainingHistory` is bit-identical to an
uninstrumented same-seed run.
"""

from __future__ import annotations

import pytest

from repro.api.registry import get_algorithm
from repro.obs.events import configure_telemetry, shutdown_telemetry


@pytest.fixture()
def ring():
    sinks = configure_telemetry(ring_size=256)
    try:
        yield sinks[0]
    finally:
        shutdown_telemetry()


def _run(ci_prepared):
    algorithm = get_algorithm("adaptivefl").build(ci_prepared)
    return algorithm.run()


class TestLifecycleEvents:
    def test_run_emits_the_documented_events(self, ci_prepared, ring):
        history = _run(ci_prepared)
        events = ring.events()
        types = [event.type for event in events]
        rounds = len(history.records)
        assert types[0] == "run_start"
        assert types[-1] == "run_end"
        assert types.count("round_start") == rounds
        assert types.count("round_end") == rounds
        assert "eval_done" in types

    def test_round_events_share_one_trace_per_round(self, ci_prepared, ring):
        _run(ci_prepared)
        per_round: dict[int, set[str]] = {}
        for event in ring.events():
            if event.type in {"round_start", "round_end", "eval_done"}:
                per_round.setdefault(event.data["round"], set()).add(event.trace_id)
        assert per_round  # at least one round observed
        for round_index, trace_ids in per_round.items():
            assert len(trace_ids) == 1, f"round {round_index} spans traces {trace_ids}"
            (trace_id,) = trace_ids
            assert f"-r{round_index}#" in trace_id

    def test_round_end_carries_duration_and_participants(self, ci_prepared, ring):
        _run(ci_prepared)
        round_ends = [event for event in ring.events() if event.type == "round_end"]
        for event in round_ends:
            assert event.data["duration_seconds"] >= 0
            assert event.data["participants"] > 0


class TestObserverParity:
    def test_history_is_bit_identical_with_telemetry_on(self, ci_prepared):
        baseline = _run(ci_prepared)
        configure_telemetry(ring_size=256)
        try:
            observed = _run(ci_prepared)
        finally:
            shutdown_telemetry()
        assert [record.to_dict() for record in observed.records] == [
            record.to_dict() for record in baseline.records
        ]
