"""The HTTP status endpoint: /metrics, /healthz, /events and 404s."""

from __future__ import annotations

import asyncio
import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.obs.events import Event
from repro.obs.metrics import MetricsRegistry
from repro.obs.sinks import RingBufferSink
from repro.obs.status import StatusServer


@pytest.fixture()
def loop():
    loop = asyncio.new_event_loop()
    thread = threading.Thread(target=loop.run_forever, daemon=True)
    thread.start()
    yield loop
    loop.call_soon_threadsafe(loop.stop)
    thread.join(timeout=10)
    loop.close()


@pytest.fixture()
def served(loop):
    registry = MetricsRegistry()
    registry.counter("rounds_total", help="completed rounds").inc(2)
    ring = RingBufferSink(capacity=4)
    ring.write(Event(type="round_start", timestamp=1.0, data={"round": 0}))
    server = StatusServer([registry], ring=ring)
    host, port = asyncio.run_coroutine_threadsafe(server.start(), loop).result(timeout=10)
    yield f"http://{host}:{port}"
    asyncio.run_coroutine_threadsafe(server.stop(), loop).result(timeout=10)


def _get(url: str) -> tuple[int, str, str]:
    with urllib.request.urlopen(url, timeout=5) as response:
        return response.status, response.headers["Content-Type"], response.read().decode("utf-8")


class TestStatusServer:
    def test_metrics_exposition(self, served):
        status, content_type, body = _get(f"{served}/metrics")
        assert status == 200
        assert content_type.startswith("text/plain; version=0.0.4")
        assert "# TYPE rounds_total counter" in body
        assert "rounds_total 2" in body

    def test_healthz(self, served):
        status, _, body = _get(f"{served}/healthz")
        assert status == 200
        assert body == "ok\n"

    def test_events_returns_ring_snapshot(self, served):
        status, content_type, body = _get(f"{served}/events")
        assert status == 200
        assert content_type.startswith("application/json")
        events = json.loads(body)
        assert len(events) == 1
        assert events[0]["type"] == "round_start"

    def test_unknown_path_is_404(self, served):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(f"{served}/nope")
        assert excinfo.value.code == 404

    def test_events_without_ring_is_empty_array(self, loop):
        server = StatusServer([MetricsRegistry()])
        host, port = asyncio.run_coroutine_threadsafe(server.start(), loop).result(timeout=10)
        try:
            _, _, body = _get(f"http://{host}:{port}/events")
            assert json.loads(body) == []
        finally:
            asyncio.run_coroutine_threadsafe(server.stop(), loop).result(timeout=10)
