"""Fleet gauges + simulated-round histogram on the process registry.

Satellite of the fleet-scale PR: every scenario round publishes
``sim_devices_online`` / ``sim_devices_recovering`` /
``sim_devices_battery_dead`` gauges and a ``sim_round_seconds``
histogram, so ``repro metrics`` (which scrapes this registry) shows the
fleet's population state live.  Telemetry must never perturb training.
"""

import numpy as np
import pytest

from repro.obs.metrics import registry


@pytest.fixture(autouse=True)
def clean_registry():
    registry().reset()
    yield
    registry().reset()


def make_heterofl(tiny_cnn, tiny_federated_setup, fast_configs, **extra):
    from repro.baselines import HeteroFL

    setup = tiny_federated_setup
    return HeteroFL(
        architecture=tiny_cnn,
        train_dataset=setup["train"],
        partition=setup["partition"],
        test_dataset=setup["test"],
        profiles=setup["profiles"],
        resource_model=setup["resource_model"],
        federated_config=fast_configs["federated"],
        local_config=fast_configs["local"],
        seed=0,
        **extra,
    )


class TestFleetMetrics:
    def test_scenario_round_publishes_gauges_and_histogram(self, tiny_cnn, tiny_federated_setup, fast_configs):
        algorithm = make_heterofl(tiny_cnn, tiny_federated_setup, fast_configs, scenario="flaky_edge")
        algorithm.run_round(0)

        online = registry().gauge("sim_devices_online", "").value
        recovering = registry().gauge("sim_devices_recovering", "").value
        dead = registry().gauge("sim_devices_battery_dead", "").value
        assert 0 <= online <= algorithm.num_clients
        assert recovering == 0 and dead == 0  # flaky_edge has no batteries
        histogram = registry().histogram("sim_round_seconds", "")
        assert histogram.calls == 1
        assert histogram.total > 0.0

    def test_gauges_track_the_current_round(self, tiny_cnn, tiny_federated_setup, fast_configs):
        algorithm = make_heterofl(tiny_cnn, tiny_federated_setup, fast_configs, scenario="flaky_edge")
        for round_index in range(3):
            algorithm.run_round(round_index)
            expected = int(np.count_nonzero(algorithm.fleet.available_mask(round_index)))
            assert registry().gauge("sim_devices_online", "").value == expected
        assert registry().histogram("sim_round_seconds", "").calls == 3

    def test_no_scenario_publishes_nothing(self, tiny_cnn, tiny_federated_setup, fast_configs):
        algorithm = make_heterofl(tiny_cnn, tiny_federated_setup, fast_configs)
        algorithm.run_round(0)
        assert registry().get("sim_devices_online") is None
        assert registry().get("sim_round_seconds") is None

    def test_prometheus_exposition_includes_fleet_metrics(self, tiny_cnn, tiny_federated_setup, fast_configs):
        """What ``repro metrics`` scrapes: the rendered registry text."""
        algorithm = make_heterofl(tiny_cnn, tiny_federated_setup, fast_configs, scenario="flaky_edge")
        algorithm.run_round(0)
        text = registry().render()
        for name in ("sim_devices_online", "sim_devices_recovering", "sim_devices_battery_dead", "sim_round_seconds"):
            assert name in text, name
        assert "sim_round_seconds_bucket" in text
