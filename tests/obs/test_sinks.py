"""JSONL sink rotation & line atomicity, ring buffer, stderr formatting."""

from __future__ import annotations

import io
import json
import threading

import pytest

from repro.obs.events import Event, EventBus
from repro.obs.sinks import JsonlSink, RingBufferSink, StderrSink, format_event


def _event(stamp: int, **data) -> Event:
    return Event(type="task_start", timestamp=float(stamp), source="w", data=data)


class TestJsonlSink:
    def test_writes_one_parseable_line_per_event(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path)
        sink.write(_event(1, task_index=7))
        sink.write(_event(2))
        sink.close()
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["data"] == {"task_index": 7}

    def test_append_mode_preserves_existing_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        for index in range(2):
            sink = JsonlSink(path)
            sink.write(_event(index))
            sink.close()
        assert len(path.read_text(encoding="utf-8").splitlines()) == 2

    def test_rotation_shifts_backups(self, tmp_path):
        path = tmp_path / "events.jsonl"
        line_size = len(json.dumps(_event(0).to_dict(), separators=(",", ":"), sort_keys=True)) + 1
        sink = JsonlSink(path, max_bytes=int(line_size * 1.5), backups=2)
        for index in range(5):
            sink.write(_event(0))
        sink.close()
        # every generation holds exactly one complete line
        assert len(path.read_text(encoding="utf-8").splitlines()) == 1
        assert len((tmp_path / "events.jsonl.1").read_text(encoding="utf-8").splitlines()) == 1
        assert len((tmp_path / "events.jsonl.2").read_text(encoding="utf-8").splitlines()) == 1
        assert not (tmp_path / "events.jsonl.3").exists()  # bounded by backups

    def test_rotation_with_zero_backups_discards(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path, max_bytes=1, backups=0)
        for index in range(3):
            sink.write(_event(index))
        sink.close()
        assert len(path.read_text(encoding="utf-8").splitlines()) == 1
        assert not (tmp_path / "events.jsonl.1").exists()

    def test_write_after_close_raises(self, tmp_path):
        sink = JsonlSink(tmp_path / "events.jsonl")
        sink.close()
        with pytest.raises(ValueError, match="closed"):
            sink.write(_event(0))

    def test_validation(self, tmp_path):
        with pytest.raises(ValueError, match="max_bytes"):
            JsonlSink(tmp_path / "e.jsonl", max_bytes=0)
        with pytest.raises(ValueError, match="backups"):
            JsonlSink(tmp_path / "e.jsonl", backups=-1)

    def test_concurrent_emitters_never_interleave_lines(self, tmp_path):
        """The atomicity unit is the line, even under rotation pressure."""
        path = tmp_path / "events.jsonl"
        sink = JsonlSink(path, max_bytes=4096, backups=50)
        bus = EventBus(source="stress")
        bus.attach(sink)
        threads_n, events_n = 4, 200
        barrier = threading.Barrier(threads_n)

        def emitter(worker: int) -> None:
            barrier.wait()
            for index in range(events_n):
                bus.emit("task_start", worker=worker, index=index, pad="x" * 40)

        threads = [threading.Thread(target=emitter, args=(worker,)) for worker in range(threads_n)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        bus.close()
        assert bus.dropped_sinks == []

        seen = set()
        for generation in [path, *sorted(tmp_path.glob("events.jsonl.*"))]:
            for line in generation.read_text(encoding="utf-8").splitlines():
                event = Event.from_dict(json.loads(line))  # every line parses strictly
                seen.add((event.data["worker"], event.data["index"]))
        assert seen == {(w, i) for w in range(threads_n) for i in range(events_n)}


class TestRingBufferSink:
    def test_keeps_most_recent_events(self):
        ring = RingBufferSink(capacity=3)
        for index in range(5):
            ring.write(_event(index, index=index))
        assert [event.data["index"] for event in ring.events()] == [2, 3, 4]
        ring.clear()
        assert ring.events() == []

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            RingBufferSink(capacity=0)


class TestStderrSink:
    def test_pretty_lines_to_stream(self):
        stream = io.StringIO()
        sink = StderrSink(stream=stream)
        sink.write(Event(type="round_end", timestamp=60.0, source="run", trace_id="t#1", data={"round": 2}))
        line = stream.getvalue()
        assert "round_end" in line and "[run]" in line and "t#1" in line and "round=2" in line


class TestFormatEvent:
    def test_empty_context_is_omitted(self):
        line = format_event(Event(type="run_start", timestamp=0.0))
        assert "[" not in line and "=" not in line
        assert line.startswith("1970-01-01T00:00:00.000+00:00 run_start")

    def test_data_keys_are_sorted(self):
        line = format_event(Event(type="eval_done", timestamp=0.0, data={"b": 2, "a": 1}))
        assert line.endswith("a=1 b=2")
