"""Event envelope, EventBus semantics, trace identity and the clock shim."""

from __future__ import annotations

import dataclasses

import pytest

from repro.obs.clock import iso_format
from repro.obs.events import (
    EVENT_SCHEMA_VERSION,
    EVENT_TYPES,
    Event,
    EventBus,
    configure_telemetry,
    emit,
    get_event_bus,
    shutdown_telemetry,
    telemetry_active,
)
from repro.obs.sinks import RingBufferSink, Sink
from repro.obs.trace import TraceContext, new_span_id, new_trace_id


class TestEvent:
    def test_round_trip(self):
        event = Event(
            type="round_start",
            timestamp=12.5,
            source="server",
            trace_id="t#000001",
            span_id="s000002",
            data={"round": 3},
        )
        assert Event.from_dict(event.to_dict()) == event

    def test_from_dict_rejects_unknown_keys(self):
        payload = Event(type="round_start", timestamp=0.0).to_dict()
        payload["surprise"] = 1
        with pytest.raises(ValueError):
            Event.from_dict(payload)

    def test_schema_version_is_stamped(self):
        assert Event(type="round_start", timestamp=0.0).to_dict()["schema_version"] == EVENT_SCHEMA_VERSION


class TestEventBus:
    def test_dormant_emit_returns_none(self):
        bus = EventBus()
        assert bus.emit("round_start", round=1) is None
        assert not bus.active

    def test_unknown_type_raises_even_when_dormant(self):
        bus = EventBus()
        with pytest.raises(ValueError, match="unknown event type"):
            bus.emit("made_up_type")

    def test_emit_delivers_to_every_sink(self):
        bus = EventBus(source="test")
        first, second = RingBufferSink(), RingBufferSink()
        bus.attach(first)
        bus.attach(second)
        event = bus.emit("task_start", trace_id="t", span_id="s", task_index=2)
        assert event is not None
        assert event.source == "test"
        assert event.data == {"task_index": 2}
        # both sinks saw the identical event (one timestamp read per emit)
        assert first.events() == [event]
        assert second.events() == [event]

    def test_failing_sink_is_detached_not_fatal(self):
        class Exploding(Sink):
            def write(self, event):
                raise RuntimeError("disk full")

        bus = EventBus()
        ring = RingBufferSink()
        bus.attach(Exploding())
        bus.attach(ring)
        event = bus.emit("round_end", round=1)
        assert event is not None  # training was not taken down
        assert ring.events() == [event]
        assert bus.dropped_sinks == ["Exploding: disk full"]
        # the exploding sink is gone; subsequent emits see only the ring
        bus.emit("round_end", round=2)
        assert len(ring.events()) == 2
        assert len(bus.dropped_sinks) == 1

    def test_detach_and_close(self):
        bus = EventBus()
        ring = RingBufferSink()
        bus.attach(ring)
        bus.detach(ring)
        bus.detach(ring)  # idempotent
        assert not bus.active
        bus.attach(ring)
        bus.close()
        assert not bus.active


class TestProcessWideBus:
    def test_configure_and_shutdown(self, tmp_path):
        assert not telemetry_active()
        try:
            sinks = configure_telemetry(jsonl_path=str(tmp_path / "events.jsonl"), ring_size=8)
            assert len(sinks) == 2
            assert telemetry_active()
            assert emit("run_start", algorithm="x") is not None
            assert (tmp_path / "events.jsonl").exists()
        finally:
            shutdown_telemetry()
        assert not telemetry_active()
        assert emit("run_start", algorithm="x") is None

    def test_defaults_attach_nothing(self):
        assert configure_telemetry() == []
        assert not get_event_bus().active


class TestTrace:
    def test_trace_ids_are_prefixed_and_increasing(self):
        first, second = new_trace_id("algo-r1"), new_trace_id("algo-r2")
        assert first.startswith("algo-r1#")
        assert second.startswith("algo-r2#")
        assert int(first.split("#")[1]) < int(second.split("#")[1])

    def test_span_ids_are_increasing(self):
        first, second = new_span_id(), new_span_id()
        assert first.startswith("s") and second.startswith("s")
        assert int(first[1:]) < int(second[1:])

    def test_trace_context_is_frozen_and_string_only(self):
        context = TraceContext(trace_id="t#000001", span_id="s000001")
        with pytest.raises(dataclasses.FrozenInstanceError):
            context.trace_id = "other"
        assert all(isinstance(value, str) for value in dataclasses.asdict(context).values())


class TestClock:
    def test_iso_format_is_utc_with_milliseconds(self):
        assert iso_format(0.0) == "1970-01-01T00:00:00.000+00:00"
        assert iso_format(1700000000.1234).endswith("+00:00")


class TestVocabulary:
    def test_every_fleet_event_is_catalogued(self):
        expected = {
            "run_start", "round_start", "round_end", "task_dispatch", "task_start",
            "task_result", "task_upload", "client_connect", "client_reconnect",
            "client_disconnect", "straggler_requeue", "checkpoint_saved", "eval_done",
            "run_end",
        }
        assert EVENT_TYPES == expected
