"""Docs-site structural checks that run without mkdocs installed.

CI builds the site with ``mkdocs build --strict``; these tests catch the
same classes of breakage locally and cheaply: nav entries pointing at
missing pages, broken relative links between pages, mkdocstrings
directives naming modules that do not exist, and public API surface
missing the docstrings the reference pages render.
"""

from __future__ import annotations

import ast
import importlib
import re
from pathlib import Path

import pytest
import yaml

REPO = Path(__file__).resolve().parents[2]
DOCS = REPO / "docs"
MKDOCS_YML = REPO / "mkdocs.yml"


def load_mkdocs_config() -> dict:
    """Parse mkdocs.yml, tolerating the non-standard python tags some plugins use."""
    text = MKDOCS_YML.read_text(encoding="utf-8")
    return yaml.safe_load(re.sub(r"!!python/\S+", "", text))


def nav_pages(nav) -> list[str]:
    """Flatten the nav tree into page paths."""
    pages: list[str] = []
    for item in nav:
        if isinstance(item, str):
            pages.append(item)
        elif isinstance(item, dict):
            for value in item.values():
                if isinstance(value, str):
                    pages.append(value)
                else:
                    pages.extend(nav_pages(value))
    return pages


def test_mkdocs_config_is_strict_and_parses():
    config = load_mkdocs_config()
    assert config["strict"] is True
    assert any("mkdocstrings" in str(plugin) for plugin in config["plugins"])


def test_every_nav_page_exists():
    config = load_mkdocs_config()
    missing = [page for page in nav_pages(config["nav"]) if not (DOCS / page).exists()]
    assert not missing, f"nav references missing pages: {missing}"


def test_every_docs_page_is_in_the_nav():
    """Orphan pages silently disappear from the site; keep the nav complete."""
    config = load_mkdocs_config()
    in_nav = set(nav_pages(config["nav"]))
    on_disk = {str(path.relative_to(DOCS)) for path in DOCS.rglob("*.md")}
    assert on_disk == in_nav, f"pages not in nav: {sorted(on_disk - in_nav)}"


def test_internal_links_resolve():
    """Every relative markdown link targets an existing file."""
    link = re.compile(r"\[[^\]]*\]\(([^)#\s]+)(?:#[^)]*)?\)")
    broken = []
    for page in DOCS.rglob("*.md"):
        for match in link.finditer(page.read_text(encoding="utf-8")):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            if not (page.parent / target).resolve().exists():
                broken.append(f"{page.relative_to(REPO)} -> {target}")
    assert not broken, f"broken relative links: {broken}"


def test_mkdocstrings_identifiers_are_importable_modules():
    """`::: repro.x.y` directives must name real modules or the strict build fails."""
    directive = re.compile(r"^::: ([\w.]+)$", re.MULTILINE)
    for page in DOCS.rglob("*.md"):
        for match in directive.finditer(page.read_text(encoding="utf-8")):
            importlib.import_module(match.group(1))


# -- docstring completeness (the surface mkdocstrings renders) -------------------------

DOCSTRING_SCOPED = [
    "src/repro/analysis",
    "src/repro/api",
    "src/repro/engine",
    "src/repro/obs",
    "src/repro/serve",
    "src/repro/store",
    "src/repro/sim/library.py",
]


def iter_public_defs(tree: ast.Module, path: Path):
    """Yield (qualified name, node) for every public module/class/function."""
    if ast.get_docstring(tree) is None:
        yield f"{path}: module", tree

    def walk(node, context):
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                if child.name.startswith("_"):
                    continue
                if ast.get_docstring(child) is None:
                    yield f"{path}:{child.lineno} {context}{child.name}", child
                if isinstance(child, ast.ClassDef):
                    yield from walk(child, f"{context}{child.name}.")

    yield from walk(tree, "")


@pytest.mark.parametrize("target", DOCSTRING_SCOPED)
def test_public_api_surface_is_fully_documented(target):
    """Every public def in the reference-rendered packages has a docstring.

    This mirrors ruff's pydocstyle D1xx rules (enforced in CI) so the gap
    is caught locally even without ruff installed.
    """
    root = REPO / target
    files = [root] if root.is_file() else sorted(root.rglob("*.py"))
    undocumented = []
    for file in files:
        tree = ast.parse(file.read_text(encoding="utf-8"))
        undocumented.extend(name for name, _ in iter_public_defs(tree, file.relative_to(REPO)))
    assert not undocumented, "missing docstrings:\n" + "\n".join(undocumented)
