"""RPL006 fixture: a raw write waved through inline."""
from pathlib import Path


def scratch(path: Path, text: str) -> None:
    path.write_text(text)  # reprolint: disable=RPL006
