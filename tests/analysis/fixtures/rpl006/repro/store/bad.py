"""RPL006 fixture: raw writes inside the store layer."""
import json
from pathlib import Path


def save(path: Path, payload: dict) -> None:
    path.write_text(json.dumps(payload))


def append_log(path: Path, line: str) -> None:
    with open(path, "a") as stream:
        stream.write(line)


def dump(path: Path, payload: dict) -> None:
    with open(path) as stream:
        json.dump(payload, stream)
