"""RPL006 fixture: reads are fine; writes go through write_atomic."""
import json
from pathlib import Path

from repro.store.objects import write_atomic


def save(path: Path, payload: dict) -> None:
    write_atomic(path, json.dumps(payload))


def load(path: Path) -> dict:
    with open(path) as stream:
        return json.load(stream)


def peek(path: Path) -> str:
    return path.read_text()
