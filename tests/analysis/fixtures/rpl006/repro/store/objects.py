"""RPL006 fixture: the exempt module — raw writes are its whole job."""


def write_atomic(path, payload):
    with open(path, "w") as stream:
        stream.write(payload)
