"""RPL001 fixture: every kind of banned entropy."""
import random
import time
import uuid

import numpy as np


def shuffle_clients(clients):
    np.random.shuffle(clients)
    return clients


def sample():
    rng = np.random.default_rng()
    return rng.random() + random.random()


def stamp():
    return time.time(), uuid.uuid4()
