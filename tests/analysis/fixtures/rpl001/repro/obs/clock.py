"""RPL001 fixture: the exempt wall-clock shim — reading time is its whole job."""

import time


def wall_time() -> float:
    return time.time()
