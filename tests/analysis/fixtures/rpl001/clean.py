"""RPL001 fixture: sanctioned randomness and measurement clocks only."""
import time

import numpy as np


def shuffle_clients(clients, seed):
    rng = np.random.default_rng(seed)
    rng.shuffle(clients)
    return clients


def streams(seed):
    return np.random.SeedSequence(seed).spawn(4)


def timed(work):
    start = time.perf_counter()
    work()
    return time.perf_counter() - start
