"""RPL001 fixture: violations waved through inline."""
import time


def stamp():
    return time.time()  # reprolint: disable=RPL001
