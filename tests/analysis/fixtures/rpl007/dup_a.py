"""RPL007 fixture (project pass): first registration of the name."""
from widgets import register_widget


@register_widget("gear")
class Gear:
    pass
