"""RPL007 fixture (project pass): duplicate registration of the name."""
from widgets import register_widget


@register_widget("gear")
class OtherGear:
    pass


@register_widget(name="lever")
class Lever:
    pass
