"""RPL007 fixture: a side-effect import with an unexplained noqa."""
import json  # noqa: F401

print(len("keeps ruff from flagging an empty module"))
