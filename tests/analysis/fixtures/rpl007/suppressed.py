"""RPL007 fixture: a bare noqa waved through inline."""
import json  # noqa: F401  # reprolint: disable=RPL007
