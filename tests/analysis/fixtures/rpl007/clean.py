"""RPL007 fixture: the explained side-effect import idiom."""
import json  # noqa: F401  (registers the widget codecs)
