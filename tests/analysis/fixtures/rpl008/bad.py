"""RPL008 fixture: a round hook fired after the checkpoint."""


def run(callbacks, algorithm, record):
    callbacks.on_round_end(algorithm, record)
    callbacks.on_checkpoint(algorithm, record)
    callbacks.on_evaluate(algorithm, record)
