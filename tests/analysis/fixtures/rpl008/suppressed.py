"""RPL008 fixture: a late hook waved through inline."""


def run(callbacks, algorithm, record):
    callbacks.on_checkpoint(algorithm, record)
    callbacks.on_evaluate(algorithm, record)  # reprolint: disable=RPL008
