"""RPL008 fixture: on_checkpoint last (re-fire included); epilogue exempt."""


def run(callbacks, algorithm, record, history):
    callbacks.on_round_start(algorithm, 0)
    callbacks.on_evaluate(algorithm, record)
    callbacks.on_round_end(algorithm, record)
    callbacks.on_checkpoint(algorithm, record)
    callbacks.on_fit_end(algorithm, history)
