"""RPL002 fixture: un-dtyped constructors in a hot path."""
import numpy as np


def allocate(n):
    grad = np.zeros((n, n))
    index = np.arange(n)
    bias = np.array([1, 2, 3])
    return grad, index, bias
