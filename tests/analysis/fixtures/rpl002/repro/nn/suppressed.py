"""RPL002 fixture: an un-dtyped allocation waved through inline."""
import numpy as np


def allocate(n):
    return np.zeros((n, n))  # reprolint: disable=RPL002
