"""RPL002 fixture: every constructor states its dtype (or inherits one)."""
import numpy as np


def allocate(n, like):
    grad = np.zeros((n, n), dtype=np.float32)
    index = np.arange(n, dtype=np.intp)
    copy = np.array(like, copy=True)
    ticks = np.arange(0.0, 1.0, 0.25)
    return grad, index, copy, ticks
