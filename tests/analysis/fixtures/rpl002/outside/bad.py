"""RPL002 fixture: same code, outside the rule's scopes — never flagged."""
import numpy as np


def allocate(n):
    return np.zeros((n, n))
