"""RPL003 fixture: plain-data task fields pickle fine."""
from dataclasses import dataclass, field

from repro.engine.base import ClientTask


@dataclass
class CleanTask(ClientTask):
    client_id: int
    seed: tuple = (0, 0, 0)
    payload: dict = field(default_factory=dict)
