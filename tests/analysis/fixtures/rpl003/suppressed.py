"""RPL003 fixture: an unpicklable field waved through inline."""
from dataclasses import dataclass
from typing import Iterator

from repro.engine.base import ClientTask


@dataclass
class WavedTask(ClientTask):
    batches: Iterator  # reprolint: disable=RPL003
