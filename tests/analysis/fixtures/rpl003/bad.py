"""RPL003 fixture: task fields that cannot cross a process boundary."""
import threading
from dataclasses import dataclass
from typing import Iterator

from repro.engine.base import ClientTask


@dataclass
class BadTask(ClientTask):
    batches: Iterator
    guard: threading.Lock = threading.Lock()
    hook = lambda record: record


@dataclass
class DerivedBadTask(BadTask):
    handle = open("/tmp/x", "r")
