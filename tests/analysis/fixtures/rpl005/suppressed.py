"""RPL005 fixture: a deliberate per-process cache waved through inline."""
_CACHE = {}


def remember(key, value):
    _CACHE[key] = value  # reprolint: disable=RPL005
