"""RPL005 fixture: module-level containers mutated from functions."""
_CACHE = {}
_LOG = []


def remember(key, value):
    _CACHE[key] = value


def note(message):
    _LOG.append(message)


def forget(key):
    _CACHE.pop(key, None)
