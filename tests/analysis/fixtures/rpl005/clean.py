"""RPL005 fixture: registries and locals are sanctioned."""
_REGISTRY = {}


def register_widget(name):
    def decorator(factory):
        _REGISTRY[name] = factory
        return factory

    return decorator


def ensure_builtin_widgets():
    _REGISTRY.setdefault("default", object)


def local_state(items):
    cache = {}
    for item in items:
        cache[item] = item
    return cache
