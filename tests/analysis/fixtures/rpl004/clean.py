"""RPL004 fixture: a strict to_dict/from_dict pair."""
from dataclasses import dataclass

from repro.core.serialization import checked_payload


@dataclass
class Strict:
    value: int

    def to_dict(self) -> dict:
        return {"value": self.value}

    @classmethod
    def from_dict(cls, payload):
        data = checked_payload(cls, payload)
        return cls(value=int(data["value"]))


class NotADataclass:
    def to_dict(self) -> dict:
        return {}
