"""RPL004 fixture: one-way and lax serialization pairs."""
from dataclasses import dataclass


@dataclass
class WriteOnly:
    value: int

    def to_dict(self) -> dict:
        return {"value": self.value}


@dataclass
class LaxReader:
    value: int

    def to_dict(self) -> dict:
        return {"value": self.value}

    @classmethod
    def from_dict(cls, payload):
        return cls(value=payload["value"])
