"""RPL004 fixture: a one-way output dataclass waved through inline."""
from dataclasses import dataclass


@dataclass
class OutputOnly:
    value: int

    def to_dict(self) -> dict:  # reprolint: disable=RPL004
        return {"value": self.value}
