"""``repro lint`` end to end: exit codes, formats, baseline flags."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.api.cli import build_parser, main

FIXTURES = Path(__file__).parent / "fixtures"


@pytest.fixture()
def project(tmp_path, monkeypatch):
    """A scratch project dir (cwd) with one RPL001 violation."""
    (tmp_path / "mod.py").write_text("import time\n\n\ndef stamp():\n    return time.time()\n")
    monkeypatch.chdir(tmp_path)
    return tmp_path


class TestExitCodes:
    def test_clean_run_exits_zero(self, project):
        (project / "mod.py").write_text("x = 1\n")
        assert main(["lint", "mod.py"]) == 0

    def test_findings_exit_one(self, project):
        assert main(["lint", "mod.py"]) == 1

    def test_missing_path_is_a_usage_error(self, project, capsys):
        assert main(["lint", "does/not/exist"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_rule_is_a_usage_error(self, project, capsys):
        assert main(["lint", "mod.py", "--rules", "RPL999"]) == 2
        assert "RPL999" in capsys.readouterr().err

    def test_missing_baseline_file_is_a_usage_error(self, project, capsys):
        assert main(["lint", "mod.py", "--baseline", "nope.json"]) == 2
        assert "baseline" in capsys.readouterr().err


class TestBaselineFlags:
    def test_write_then_lint_clean(self, project, capsys):
        assert main(["lint", "mod.py", "--write-baseline"]) == 0
        assert (project / "reprolint_baseline.json").exists()
        assert main(["lint", "mod.py"]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_default_baseline_discovered_from_cwd(self, project):
        main(["lint", "mod.py", "--write-baseline"])
        assert main(["lint", "mod.py"]) == 0
        assert main(["lint", "mod.py", "--no-baseline"]) == 1

    def test_stale_entries_fail_only_under_strict(self, project):
        main(["lint", "mod.py", "--write-baseline"])
        (project / "mod.py").write_text("x = 1\n")  # fix the violation
        assert main(["lint", "mod.py"]) == 0
        assert main(["lint", "mod.py", "--strict"]) == 1


class TestFormats:
    def test_json_format_parses_and_is_versioned(self, project, capsys):
        assert main(["lint", "mod.py", "--format", "json"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["schema_version"] == 1
        assert document["summary"]["findings"] == 1

    def test_output_writes_the_report_file(self, project, capsys):
        assert main(["lint", "mod.py", "--format", "json", "--output", "report.json"]) == 1
        capsys.readouterr()
        document = json.loads((project / "report.json").read_text())
        assert document["tool"] == "reprolint"

    def test_list_rules(self, project, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in [f"RPL00{i}" for i in range(1, 9)]:
            assert code in out


class TestHelp:
    def test_help_lists_every_subcommand(self):
        help_text = build_parser().format_help()
        for command in ["run", "compare", "algorithms", "scenarios", "sweep", "lint", "report"]:
            assert command in help_text
