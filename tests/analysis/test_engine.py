"""The lint driver: file collection, parse errors, suppressions, scoping."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import PARSE_ERROR_CODE, Finding, lint_paths
from repro.analysis.context import FileContext, path_matches

FIXTURES = Path(__file__).parent / "fixtures"


class TestPathMatches:
    def test_contiguous_segments(self):
        assert path_matches("src/repro/nn/functional.py", "repro/nn")
        assert not path_matches("src/repro/nnext/x.py", "repro/nn")

    def test_exact_file(self):
        assert path_matches("src/repro/engine/rng.py", "repro/engine/rng.py")
        assert not path_matches("src/repro/engine/rng_helpers.py", "repro/engine/rng.py")


class TestLintPaths:
    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            lint_paths([tmp_path / "nope"])

    def test_scans_only_python_files(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        (tmp_path / "b.txt").write_text("not python\n")
        (tmp_path / "__pycache__").mkdir()
        (tmp_path / "__pycache__" / "c.py").write_text("x = 1\n")
        result = lint_paths([tmp_path])
        assert result.files_scanned == 1

    def test_duplicate_paths_deduped(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        result = lint_paths([tmp_path, tmp_path / "a.py"])
        assert result.files_scanned == 1

    def test_parse_error_becomes_rpl000(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        result = lint_paths([tmp_path])
        assert [f.code for f in result.findings] == [PARSE_ERROR_CODE]
        assert not result.clean

    def test_relative_to_controls_display_paths(self, tmp_path):
        (tmp_path / "mod.py").write_text("import time\ntime.time()\n")
        result = lint_paths([tmp_path], relative_to=tmp_path)
        assert result.findings and result.findings[0].path == "mod.py"

    def test_rule_selection(self, tmp_path):
        (tmp_path / "mod.py").write_text("import time\ntime.time()\n")
        assert lint_paths([tmp_path], rules=["RPL001"]).findings
        assert not lint_paths([tmp_path], rules=["RPL006"]).findings

    def test_unknown_rule_raises(self, tmp_path):
        (tmp_path / "mod.py").write_text("x = 1\n")
        with pytest.raises(KeyError, match="RPL999"):
            lint_paths([tmp_path], rules=["RPL999"])

    def test_suppressions_counted_not_dropped(self):
        result = lint_paths([FIXTURES / "rpl001" / "suppressed.py"])
        assert result.clean
        assert result.suppressed == 1

    def test_findings_sorted_deterministically(self):
        result = lint_paths([FIXTURES / "rpl001" / "bad.py"])
        assert result.findings == sorted(result.findings)


class TestFinding:
    def test_round_trips_strictly(self):
        finding = Finding(path="a.py", line=3, column=1, code="RPL001", message="m", symbol="s")
        assert Finding.from_dict(finding.to_dict()) == finding

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError):
            Finding.from_dict({"path": "a.py", "code": "RPL001", "message": "m", "bogus": 1})

    def test_fingerprint_excludes_position(self):
        a = Finding(path="a.py", line=3, column=1, code="RPL001", message="m")
        b = Finding(path="a.py", line=99, column=0, code="RPL001", message="m")
        assert a.fingerprint() == b.fingerprint()


class TestFileContext:
    def test_alias_resolution(self):
        source = "import numpy as np\nfrom time import perf_counter\n"
        import ast

        ctx = FileContext(Path("x.py"), "x.py", source, ast.parse(source))
        call = ast.parse("np.random.shuffle(x)").body[0].value
        assert ctx.resolve_call(call) == "numpy.random.shuffle"
        call = ast.parse("perf_counter()").body[0].value
        assert ctx.resolve_call(call) == "time.perf_counter"

    def test_unimported_chain_is_unknowable(self):
        import ast

        ctx = FileContext(Path("x.py"), "x.py", "", ast.parse(""))
        call = ast.parse("self.rng.shuffle(x)").body[0].value
        assert ctx.resolve_call(call) is None
