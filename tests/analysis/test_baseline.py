"""Baseline semantics: grandfathering, multiset matching, drift both ways."""

from __future__ import annotations

import json

import pytest

from repro.analysis import Baseline, Finding


def _finding(message="m", line=3, code="RPL005", path="a.py"):
    return Finding(path=path, line=line, column=0, code=code, message=message)


class TestRoundTrip:
    def test_save_load(self, tmp_path):
        baseline = Baseline.from_findings([_finding(), _finding(message="other")])
        target = tmp_path / "baseline.json"
        baseline.save(target)
        loaded = Baseline.load(target)
        assert loaded.entries == baseline.entries
        payload = json.loads(target.read_text())
        assert payload["schema_version"] == 1
        assert payload["tool"] == "reprolint"

    def test_unknown_schema_version_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"schema_version": 99, "entries": []}))
        with pytest.raises(ValueError, match="schema_version"):
            Baseline.load(target)

    def test_entry_missing_keys_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text(json.dumps({"schema_version": 1, "entries": [{"code": "RPL005"}]}))
        with pytest.raises(ValueError, match="missing keys"):
            Baseline.load(target)


class TestMatching:
    def test_baselined_findings_are_not_new(self):
        baseline = Baseline.from_findings([_finding()])
        match = baseline.match([_finding(line=99)])  # moved, same fingerprint
        assert not match.new and not match.stale
        assert len(match.baselined) == 1

    def test_new_finding_is_drift(self):
        match = Baseline.from_findings([_finding()]).match([_finding(), _finding(message="fresh")])
        assert [f.message for f in match.new] == ["fresh"]

    def test_stale_entry_is_drift(self):
        match = Baseline.from_findings([_finding(), _finding(message="fixed")]).match([_finding()])
        assert not match.new
        assert [entry["message"] for entry in match.stale] == ["fixed"]

    def test_multiset_semantics(self):
        # two identical findings need two entries; fixing one shows as stale
        pair = [_finding(line=1), _finding(line=2)]
        baseline = Baseline.from_findings(pair)
        match = baseline.match(pair[:1])
        assert not match.new
        assert len(match.baselined) == 1
        assert len(match.stale) == 1

    def test_empty_baseline_passes_everything_through(self):
        match = Baseline().match([_finding()])
        assert len(match.new) == 1 and not match.stale
