"""The e2e gate: this repository lints clean against its own baseline.

These are the tests the CI ``lint-analysis`` job mirrors.  Drift fails
in both directions: a new finding anywhere under ``src/`` fails, and a
baseline entry that no longer matches a finding fails too — the
baseline can only shrink through honest cleanup.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import Baseline, lint_paths
from repro.analysis.baseline import DEFAULT_BASELINE_NAME

REPO_ROOT = Path(__file__).resolve().parents[2]


@pytest.fixture(scope="module")
def repo_match():
    result = lint_paths([REPO_ROOT / "src"], relative_to=REPO_ROOT)
    baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_NAME)
    return result, baseline.match(result.findings)


class TestSelfClean:
    def test_src_has_no_new_findings(self, repo_match):
        _, match = repo_match
        assert not match.new, "\n".join(f.location() + " " + f.message for f in match.new)

    def test_baseline_has_no_stale_entries(self, repo_match):
        _, match = repo_match
        assert not match.stale, [entry["path"] for entry in match.stale]

    def test_baseline_is_rpl005_caches_only(self, repo_match):
        # the only grandfathered findings are the documented per-process
        # caches; anything else belongs fixed, not baselined
        _, match = repo_match
        assert {f.code for f in match.baselined} == {"RPL005"}


class TestDriftFailsBothWays:
    def test_seeded_violation_is_new(self, repo_match, tmp_path):
        result, _ = repo_match
        seeded_src = tmp_path / "repro" / "nn"
        seeded_src.mkdir(parents=True)
        (seeded_src / "seeded.py").write_text(
            "import numpy as np\n\n\ndef alloc(n):\n    return np.zeros(n)\n"
        )
        seeded = lint_paths([tmp_path], relative_to=tmp_path)
        combined = result.findings + seeded.findings
        match = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_NAME).match(combined)
        assert [f.code for f in match.new] == ["RPL002"]

    def test_removed_finding_turns_its_entry_stale(self, repo_match):
        result, _ = repo_match
        baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_NAME)
        survivor = baseline.entries[0]
        trimmed = [
            finding
            for finding in result.findings
            if finding.fingerprint() != (survivor["code"], survivor["path"], survivor["message"])
        ]
        match = baseline.match(trimmed)
        assert not match.new
        assert len(match.stale) >= 1
