"""The JSON report is a published interface: its shape is locked here.

If one of these tests fails, either restore the field or bump
``REPORT_SCHEMA_VERSION`` and document the change in
``docs/guides/lint.md`` — never silently reshape the document.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis import Baseline, lint_paths
from repro.analysis.report import REPORT_SCHEMA_VERSION, render_json, render_text

FIXTURES = Path(__file__).parent / "fixtures"


def _report(baseline: Baseline | None = None):
    result = lint_paths([FIXTURES / "rpl001" / "bad.py"], rules=["RPL001"], relative_to=FIXTURES)
    match = (baseline or Baseline()).match(result.findings)
    return result, match


class TestJsonSchema:
    def test_top_level_shape(self):
        result, match = _report()
        document = json.loads(render_json(result, match))
        assert list(document) == ["schema_version", "tool", "summary", "rules", "findings", "stale_baseline"]
        assert document["schema_version"] == REPORT_SCHEMA_VERSION == 1
        assert document["tool"] == "reprolint"

    def test_summary_shape(self):
        result, match = _report()
        summary = json.loads(render_json(result, match))["summary"]
        assert list(summary) == ["files_scanned", "findings", "baselined", "suppressed", "stale_baseline", "clean"]
        assert summary["files_scanned"] == 1
        assert summary["findings"] == len(match.new) > 0
        assert summary["clean"] is False

    def test_finding_shape(self):
        result, match = _report()
        findings = json.loads(render_json(result, match))["findings"]
        for finding in findings:
            assert list(finding) == ["code", "symbol", "path", "line", "column", "message", "baselined"]
            assert finding["baselined"] is False

    def test_rules_catalogue_covers_every_rule(self):
        result, match = _report()
        rules = json.loads(render_json(result, match))["rules"]
        assert [rule["code"] for rule in rules] == [f"RPL00{i}" for i in range(1, 9)]
        for rule in rules:
            assert list(rule) == ["code", "name", "summary", "scopes", "findings"]

    def test_baselined_findings_marked(self):
        result, _ = _report()
        baseline = Baseline.from_findings(result.findings)
        _, match = _report(baseline)
        document = json.loads(render_json(result, match))
        assert all(finding["baselined"] for finding in document["findings"])
        assert document["summary"]["clean"] is True


class TestTextReport:
    def test_lists_findings_and_summary(self):
        result, match = _report()
        text = render_text(result, match)
        assert "RPL001" in text and "[global-rng]" in text
        assert "1 files scanned" in text

    def test_clean_run_says_so(self):
        result, _ = _report()
        _, match = _report(Baseline.from_findings(result.findings))
        assert "— clean" in render_text(result, match)

    def test_stale_entries_are_reported(self):
        result, _ = _report()
        baseline = Baseline.from_findings(result.findings)
        baseline.entries.append({"code": "RPL001", "path": "gone.py", "message": "fixed ages ago", "line": 1})
        _, match = _report(baseline)
        assert "stale baseline entry" in render_text(result, match)
