"""Every shipped rule against its violating / clean / suppressed fixtures."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.analysis import available_rules, lint_paths

FIXTURES = Path(__file__).parent / "fixtures"

#: rule -> (fixture dir, paths relative to it, expected minimum findings in bad)
CASES = {
    "RPL001": ("rpl001", [""], 5),
    "RPL002": ("rpl002", ["repro/nn"], 3),
    "RPL003": ("rpl003", [""], 3),
    "RPL004": ("rpl004", [""], 2),
    "RPL005": ("rpl005", [""], 3),
    "RPL006": ("rpl006", ["repro/store"], 3),
    "RPL007": ("rpl007", [""], 1),
    "RPL008": ("rpl008", [""], 1),
}


def _lint_fixture(code: str, name: str):
    fixture_dir, subdirs, _ = CASES[code]
    root = FIXTURES / fixture_dir
    paths = [root / sub / name if sub else root / name for sub in subdirs]
    return lint_paths(paths, rules=[code], relative_to=root)


@pytest.mark.parametrize("code", sorted(CASES))
class TestEveryRule:
    def test_bad_fixture_is_flagged(self, code):
        _, _, minimum = CASES[code]
        result = _lint_fixture(code, "bad.py")
        assert len(result.findings) >= minimum
        assert {f.code for f in result.findings} == {code}
        assert all(f.line > 0 and f.message for f in result.findings)

    def test_clean_fixture_passes(self, code):
        result = _lint_fixture(code, "clean.py")
        assert result.clean, [f.location() for f in result.findings]

    def test_suppressed_fixture_is_counted(self, code):
        result = _lint_fixture(code, "suppressed.py")
        assert result.clean, [f.location() for f in result.findings]
        assert result.suppressed >= 1


class TestScopesAndExemptions:
    def test_rpl002_ignores_files_outside_its_scopes(self):
        root = FIXTURES / "rpl002"
        result = lint_paths([root / "outside" / "bad.py"], rules=["RPL002"], relative_to=root)
        assert result.clean

    def test_rpl006_exempts_the_atomic_write_module(self):
        root = FIXTURES / "rpl006"
        result = lint_paths([root / "repro" / "store" / "objects.py"], rules=["RPL006"], relative_to=root)
        assert result.clean

    def test_rpl001_exempts_the_telemetry_clock_shim(self):
        root = FIXTURES / "rpl001"
        result = lint_paths([root / "repro" / "obs" / "clock.py"], rules=["RPL001"], relative_to=root)
        assert result.clean


class TestProjectWidePasses:
    def test_rpl007_flags_duplicate_registration_names(self):
        root = FIXTURES / "rpl007"
        result = lint_paths([root / "dup_a.py", root / "dup_b.py"], rules=["RPL007"], relative_to=root)
        duplicates = [f for f in result.findings if "also registered" in f.message]
        assert len(duplicates) == 1
        assert duplicates[0].path == "dup_b.py"
        assert "dup_a.py" in duplicates[0].message

    def test_rpl007_unique_names_pass(self):
        root = FIXTURES / "rpl007"
        result = lint_paths([root / "dup_a.py"], rules=["RPL007"], relative_to=root)
        assert result.clean


class TestRuleCatalogue:
    def test_all_eight_rules_registered(self):
        codes = [spec.code for spec in available_rules()]
        assert codes == [f"RPL00{i}" for i in range(1, 9)]

    def test_specs_are_fully_described(self):
        for spec in available_rules():
            assert spec.name and spec.summary and spec.rationale
